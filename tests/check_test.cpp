// Tests for the src/check subsystem: the variant grid, clean fuzz
// sweeps, jobs-independence, shrinking, and — the acceptance case — a
// deliberately injected diff-accounting bug being caught by the
// auditor and shrunk to a tiny reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "check/checker.hpp"
#include "check/fuzz.hpp"
#include "check/shrink.hpp"
#include "check/workload_gen.hpp"
#include "common/rng.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_utils.hpp"

namespace actrack::check {
namespace {

std::int64_t count_accesses(const TraceFile& trace) {
  std::int64_t total = 0;
  for (const auto& iteration : trace.iterations) {
    for (const auto& phase : iteration.phases) {
      for (const auto& thread : phase.threads) {
        for (const auto& segment : thread.segments) {
          total += static_cast<std::int64_t>(segment.accesses.size());
        }
      }
    }
  }
  return total;
}

bool writes_page(const TraceFile& trace, PageId page) {
  for (const auto& iteration : trace.iterations) {
    for (const auto& phase : iteration.phases) {
      for (const auto& thread : phase.threads) {
        for (const auto& segment : thread.segments) {
          for (const auto& access : segment.accesses) {
            if (access.kind == AccessKind::kWrite && access.page == page) {
              return true;
            }
          }
        }
      }
    }
  }
  return false;
}

void expect_valid(const TraceFile& trace) {
  for (const auto& iteration : trace.iterations) {
    EXPECT_NO_THROW(validate_trace(iteration, trace.num_pages));
  }
}

TEST(CheckVariants, StandardGridShape) {
  const auto both = standard_variants();
  // 4 SC + 4 LRC + 1 LRC vector-clock, each model once more on a
  // faulty network and once more with per-frame faults under the
  // packetized link layer.
  EXPECT_EQ(both.size(), 13u);
  std::set<std::string> names;
  for (const CheckVariant& variant : both) names.insert(variant.name());
  EXPECT_EQ(names.size(), both.size()) << "variant names must be unique";

  EXPECT_EQ(standard_variants(ConsistencyModel::kLazyReleaseMultiWriter)
                .size(),
            7u);
  EXPECT_EQ(standard_variants(ConsistencyModel::kSequentialSingleWriter)
                .size(),
            6u);
  // The fullest LRC configuration also runs under vector-clock
  // causality.
  const auto lrc = standard_variants(ConsistencyModel::kLazyReleaseMultiWriter);
  EXPECT_TRUE(std::any_of(lrc.begin(), lrc.end(), [](const CheckVariant& v) {
    return v.causality == CausalityMode::kVectorClock && v.gc && v.migration;
  }));
  // Each model runs its fullest configuration on a faulty network
  // twice: message-level fates, then per-frame fates under the link
  // layer.
  for (const ConsistencyModel model :
       {ConsistencyModel::kLazyReleaseMultiWriter,
        ConsistencyModel::kSequentialSingleWriter}) {
    const auto grid = standard_variants(model);
    EXPECT_EQ(std::count_if(grid.begin(), grid.end(),
                            [](const CheckVariant& v) { return v.faulted; }),
              2);
    EXPECT_EQ(std::count_if(grid.begin(), grid.end(),
                            [](const CheckVariant& v) {
                              return v.faulted && v.linked;
                            }),
              1);
  }
}

TEST(CheckTrace, SingleVariantPerformsChecks) {
  Rng rng(11);
  const TraceFile trace = random_trace(rng, 4, 8, 2);
  const std::int64_t checks = check_trace_variant(trace, CheckVariant{});
  EXPECT_GT(checks, 0);
}

TEST(CheckFuzz, CleanSweepOverBothModels) {
  FuzzOptions options;
  options.seeds = 6;
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.clean()) << (report.failures.empty()
                                      ? ""
                                      : report.failures.front().message);
  EXPECT_EQ(report.seeds_run, 6);
  EXPECT_GT(report.checks_performed, 0);
}

TEST(CheckFuzz, ResultIndependentOfJobs) {
  FuzzOptions serial;
  serial.seeds = 6;
  FuzzOptions parallel = serial;
  parallel.jobs = 4;
  const FuzzReport a = run_fuzz(serial);
  const FuzzReport b = run_fuzz(parallel);
  EXPECT_EQ(a.checks_performed, b.checks_performed);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

// The acceptance case: a deliberately corrupted accounting model (the
// auditor's books leak page-0 write bytes) must be detected, shrunk to
// a reproducer of at most a handful of iterations, and serialised for
// replay.
TEST(CheckFuzz, InjectedAccountingBugIsCaughtAndShrunk) {
  FuzzOptions options;
  options.seeds = 3;
  options.fault = FaultInjection::kLeakPageZeroDiffBytes;
  options.shrink = true;
  options.repro_dir = ::testing::TempDir();
  const FuzzReport report = run_fuzz(options);
  ASSERT_FALSE(report.clean());

  const FuzzFailure& failure = report.failures.front();
  EXPECT_NE(failure.message.find("auditor"), std::string::npos)
      << failure.message;
  EXPECT_GT(failure.shrink_attempts, 0);
  // The shrunk reproducer is tiny (the fault needs only one page-0
  // write), and in particular within the ISSUE's 5-iteration bound.
  EXPECT_LE(failure.reproducer.iterations.size(), 5u);
  EXPECT_LE(count_accesses(failure.reproducer), 4);
  EXPECT_TRUE(writes_page(failure.reproducer, 0));
  expect_valid(failure.reproducer);

  // The serialised reproducer round-trips and still fails under the
  // same corrupted model...
  ASSERT_FALSE(failure.repro_path.empty());
  const TraceFile replay = load_trace_file(failure.repro_path);
  CheckOptions check_options;
  check_options.fault = FaultInjection::kLeakPageZeroDiffBytes;
  const auto verdict =
      check_trace(replay, standard_variants(), check_options);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->variant, failure.variant);
  // ...and is clean once the fault is removed (the bug was in the
  // model we corrupted, not in the protocol).
  EXPECT_FALSE(check_trace(replay, standard_variants()).has_value());
}

TEST(CheckShrink, MinimisesToSinglePredicateAccess) {
  // Synthetic predicate: the trace still contains a write to page 3.
  // Greedy shrinking must strip everything else down to exactly one
  // iteration, one phase, one access.
  Rng rng(5);
  TraceFile trace = random_trace(rng, 4, 8, 3);
  const FailPredicate has_write_to_3 = [](const TraceFile& candidate) {
    return writes_page(candidate, 3);
  };
  ASSERT_TRUE(has_write_to_3(trace)) << "seed must produce the write";

  const ShrinkResult result = shrink_trace(trace, has_write_to_3);
  EXPECT_TRUE(has_write_to_3(result.trace));
  EXPECT_EQ(result.trace.iterations.size(), 1u);
  EXPECT_EQ(count_accesses(result.trace), 1);
  EXPECT_GT(result.attempts, 0);
  EXPECT_GE(result.rounds, 1);
  expect_valid(result.trace);
}

TEST(CheckShrink, RejectsNonFailingInput) {
  Rng rng(7);
  TraceFile trace = random_trace(rng, 3, 8, 2);
  EXPECT_THROW(
      (void)shrink_trace(trace, [](const TraceFile&) { return false; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace actrack::check
