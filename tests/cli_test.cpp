#include "tools/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace actrack::cli {
namespace {

Options parse_ok(std::initializer_list<const char*> args) {
  std::vector<std::string> v;
  for (const char* arg : args) v.emplace_back(arg);
  return parse(v);
}

TEST(CliParse, DefaultsMatchPaperScale) {
  const Options o = parse_ok({"run"});
  EXPECT_EQ(o.command, "run");
  EXPECT_EQ(o.app, "SOR");
  EXPECT_EQ(o.threads, 64);
  EXPECT_EQ(o.nodes, 8);
  EXPECT_EQ(o.placement, "stretch");
  EXPECT_EQ(o.consistency, "lrc");
  EXPECT_TRUE(o.latency_hiding);
}

TEST(CliParse, ParsesFlags) {
  const Options o = parse_ok({"track", "--app", "Water", "--threads", "16",
                              "--nodes", "4", "--placement", "mincost",
                              "--consistency", "sc", "--seed", "7",
                              "--no-latency-hiding", "--ascii", "--pgm",
                              "m.pgm"});
  EXPECT_EQ(o.command, "track");
  EXPECT_EQ(o.app, "Water");
  EXPECT_EQ(o.threads, 16);
  EXPECT_EQ(o.nodes, 4);
  EXPECT_EQ(o.placement, "mincost");
  EXPECT_EQ(o.consistency, "sc");
  EXPECT_EQ(o.seed, 7u);
  EXPECT_FALSE(o.latency_hiding);
  EXPECT_TRUE(o.ascii);
  EXPECT_EQ(o.pgm_path, "m.pgm");
}

TEST(CliParse, DesJobsParsesCountsAndAuto) {
  EXPECT_EQ(parse_ok({"run", "--des-jobs", "4"}).des_jobs, 4);
  EXPECT_EQ(parse_ok({"run", "--des-jobs", "1"}).des_jobs, 1);
  // auto is the 0 sentinel, resolved to hardware threads (capped at
  // --nodes) when the scheduler config is built.
  EXPECT_EQ(parse_ok({"run", "--des-jobs", "auto"}).des_jobs, 0);
  EXPECT_EQ(parse_ok({"serve", "--app", "KV", "--des-jobs", "auto"}).des_jobs,
            0);
  EXPECT_THROW((void)parse_ok({"run", "--des-jobs", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--des-jobs", "-2"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--des-jobs", "many"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--des-jobs"}), std::invalid_argument);
}

TEST(CliRun, DesJobsAutoRunsAndMatchesSerial) {
  std::ostringstream serial;
  EXPECT_EQ(run(parse_ok({"run", "--app", "SOR", "--threads", "8", "--nodes",
                          "4", "--iterations", "2"}),
                serial),
            0);
  std::ostringstream auto_jobs;
  EXPECT_EQ(run(parse_ok({"run", "--app", "SOR", "--threads", "8", "--nodes",
                          "4", "--iterations", "2", "--des-jobs", "auto"}),
                auto_jobs),
            0);
  // Bit-identical results at any worker count, auto included.
  EXPECT_EQ(serial.str(), auto_jobs.str());
}

TEST(CliParse, RejectsBadInput) {
  EXPECT_THROW((void)parse_ok({}), std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"frobnicate"}), std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--bogus"}), std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--threads"}), std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--threads", "abc"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--threads", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"run", "--threads", "4", "--nodes", "8"}),
               std::invalid_argument);
}

TEST(CliRun, ListNamesEveryTable1App) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"list"}), out), 0);
  for (const char* name : {"Barnes", "FFT6", "LU2k", "Ocean", "Spatial",
                           "SOR", "Water"}) {
    EXPECT_NE(out.str().find(name), std::string::npos) << name;
  }
}

TEST(CliRun, InfoPrintsPageLayout) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"info", "--app", "SOR", "--threads", "16"}), out),
            0);
  EXPECT_NE(out.str().find("4099 shared pages"), std::string::npos);
  EXPECT_NE(out.str().find("sor.grid"), std::string::npos);
}

TEST(CliRun, RunPrintsPerIterationMetrics) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"run", "--app", "Water", "--threads", "16",
                          "--nodes", "4", "--iterations", "2"}),
                out),
            0);
  EXPECT_NE(out.str().find("remote-misses"), std::string::npos);
  EXPECT_NE(out.str().find("total:"), std::string::npos);
}

TEST(CliRun, TrackReportsFaultsAndCuts) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"track", "--app", "SOR", "--threads", "16",
                          "--nodes", "4", "--ascii"}),
                out),
            0);
  EXPECT_NE(out.str().find("tracking faults"), std::string::npos);
  EXPECT_NE(out.str().find("sharing degree"), std::string::npos);
  EXPECT_NE(out.str().find("min-cost="), std::string::npos);
}

TEST(CliRun, CutcostListsAllPlacements) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"cutcost", "--app", "Water", "--threads", "16",
                          "--nodes", "4", "--samples", "2"}),
                out),
            0);
  EXPECT_NE(out.str().find("stretch:"), std::string::npos);
  EXPECT_NE(out.str().find("min-cost:"), std::string::npos);
  EXPECT_NE(out.str().find("random#1"), std::string::npos);
}

TEST(CliRun, SweepComparesStandardPlacements) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"sweep", "--app", "Water", "--threads", "16",
                          "--nodes", "4", "--iterations", "1"}),
                out),
            0);
  for (const char* label : {"stretch", "mincost", "random"}) {
    EXPECT_NE(out.str().find(label), std::string::npos) << label;
  }
}

TEST(CliRun, SweepParallelMatchesSerial) {
  const auto sweep = [](const char* jobs) {
    std::ostringstream out;
    EXPECT_EQ(run(parse_ok({"sweep", "--app", "SOR", "--threads", "16",
                            "--nodes", "4", "--iterations", "2", "--format",
                            "csv", "--jobs", jobs}),
                  out),
              0);
    return out.str();
  };
  EXPECT_EQ(sweep("1"), sweep("4"));
}

TEST(CliRun, SweepJsonFormatIsWellFormedArray) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"sweep", "--app", "SOR", "--threads", "16",
                          "--nodes", "4", "--iterations", "1", "--format",
                          "json"}),
                out),
            0);
  EXPECT_EQ(out.str().front(), '[');
  EXPECT_NE(out.str().find("\"label\": \"mincost\""), std::string::npos);
  EXPECT_NE(out.str().rfind("]\n"), std::string::npos);
}

TEST(CliRun, SweepCsvFlagWritesFile) {
  const std::string path = ::testing::TempDir() + "cli_sweep.csv";
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"sweep", "--app", "SOR", "--threads", "16",
                          "--nodes", "4", "--iterations", "1", "--format",
                          "csv", "--csv", path.c_str()}),
                out),
            0);
  EXPECT_NE(out.str().find("sweep results written to"), std::string::npos);
  std::ifstream csv(path);
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header.rfind("trial,experiment,label", 0), 0u);
  int rows = 0;
  for (std::string line; std::getline(csv, line);) ++rows;
  EXPECT_EQ(rows, 3);  // one per placement strategy
  std::remove(path.c_str());
}

TEST(CliParse, SweepRejectsBadJobsAndFormat) {
  EXPECT_THROW((void)parse_ok({"sweep", "--jobs", "0"}),
               std::invalid_argument);
  EXPECT_THROW((void)parse_ok({"sweep", "--format", "xml"}),
               std::invalid_argument);
}

TEST(CliRun, PassiveRunsRounds) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"passive", "--app", "SOR", "--threads", "16",
                          "--nodes", "4", "--rounds", "3"}),
                out),
            0);
  EXPECT_NE(out.str().find("completeness"), std::string::npos);
}

TEST(CliRun, AdaptiveReportsTrackingActivity) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"adaptive", "--threads", "16", "--nodes", "4",
                          "--iterations", "12"}),
                out),
            0);
  EXPECT_NE(out.str().find("tracked iterations"), std::string::npos);
}

TEST(CliRun, ScConsistencyRuns) {
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"run", "--app", "Water", "--threads", "16",
                          "--nodes", "4", "--iterations", "1",
                          "--consistency", "sc"}),
                out),
            0);
}

TEST(CliRun, RecordThenReplayRoundTrips) {
  const std::string path = ::testing::TempDir() + "cli_roundtrip.actrace";
  std::ostringstream rec_out;
  EXPECT_EQ(run(parse_ok({"record", "--app", "SOR", "--threads", "16",
                          "--iterations", "2", "--trace", path.c_str()}),
                rec_out),
            0);
  EXPECT_NE(rec_out.str().find("recorded 3 iterations"), std::string::npos);

  std::ostringstream replay_out;
  EXPECT_EQ(run(parse_ok({"replay", "--trace", path.c_str(), "--nodes", "4",
                          "--iterations", "2"}),
                replay_out),
            0);
  EXPECT_NE(replay_out.str().find("replayed 2 iterations"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CliRun, RecordWithoutTracePathFails) {
  std::ostringstream out;
  EXPECT_THROW((void)run(parse_ok({"record", "--app", "SOR"}), out),
               std::invalid_argument);
}

TEST(CliRun, ReplayMissingFileReturnsError) {
  std::ostringstream out, err;
  EXPECT_EQ(main_impl({"replay", "--trace", "/nonexistent/x.actrace"}, out,
                      err),
            1);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

TEST(CliRun, CsvFlagWritesMetricsFile) {
  const std::string path = ::testing::TempDir() + "cli_metrics.csv";
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"run", "--app", "Water", "--threads", "16",
                          "--nodes", "4", "--iterations", "2", "--csv",
                          path.c_str()}),
                out),
            0);
  std::ifstream csv(path);
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header.rfind("index,kind,elapsed_us", 0), 0u);
  std::remove(path.c_str());
}

TEST(CliParse, ProfileParsesObservabilityFlags) {
  const Options o = parse_ok({"profile", "--app", "FFT6", "--trace",
                              "t.json", "--timeline", "u.svg", "--csv",
                              "e.csv", "--iterations", "2"});
  EXPECT_EQ(o.command, "profile");
  EXPECT_EQ(o.trace_path, "t.json");
  EXPECT_EQ(o.timeline_path, "u.svg");
  EXPECT_EQ(o.csv_path, "e.csv");
}

TEST(CliRun, ProfileWithoutTracePathFails) {
  std::ostringstream out;
  EXPECT_THROW((void)run(parse_ok({"profile", "--app", "SOR"}), out),
               std::invalid_argument);
}

TEST(CliRun, ProfileWritesTraceTimelineAndEventCsv) {
  const std::string trace = ::testing::TempDir() + "cli_profile.trace.json";
  const std::string svg = ::testing::TempDir() + "cli_profile.svg";
  const std::string csv = ::testing::TempDir() + "cli_profile_events.csv";
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"profile", "--app", "SOR", "--threads", "16",
                          "--nodes", "4", "--iterations", "2", "--trace",
                          trace.c_str(), "--timeline", svg.c_str(), "--csv",
                          csv.c_str()}),
                out),
            0);
  EXPECT_NE(out.str().find("profiled SOR"), std::string::npos);
  EXPECT_NE(out.str().find("remote misses"), std::string::npos);
  EXPECT_NE(out.str().find("fetch/latency_us"), std::string::npos);

  std::ifstream json(trace);
  std::string first;
  std::getline(json, first);
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);

  std::ifstream timeline(svg);
  std::string svg_first;
  std::getline(timeline, svg_first);
  EXPECT_NE(svg_first.find("<svg"), std::string::npos);

  std::ifstream events(csv);
  std::string header;
  std::getline(events, header);
  EXPECT_EQ(header, "time_us,kind,node,thread,a,b");

  std::remove(trace.c_str());
  std::remove(svg.c_str());
  std::remove(csv.c_str());
}

TEST(CliRun, SweepTraceDirWritesOneTracePerTrial) {
  const std::string dir = ::testing::TempDir();
  std::ostringstream out;
  EXPECT_EQ(run(parse_ok({"sweep", "--app", "SOR", "--threads", "16",
                          "--nodes", "4", "--iterations", "1",
                          "--trace-dir", dir.c_str()}),
                out),
            0);
  EXPECT_NE(out.str().find("per-trial traces written to"),
            std::string::npos);
  int traces = 0;
  for (int trial = 0; trial < 3; ++trial) {  // one per placement strategy
    const std::string path =
        dir + "sweep_t" + std::to_string(trial) + ".trace.json";
    std::ifstream json(path);
    if (json.good()) {
      traces += 1;
      std::remove(path.c_str());
    }
  }
  EXPECT_EQ(traces, 3);
}

TEST(CliParse, ServeParsesItsFlags) {
  const Options o = parse_ok(
      {"serve", "--app", "KV", "--mode", "oneshot", "--rate", "8000",
       "--zipf-s", "1.2", "--drift-period", "4", "--windows", "12",
       "--window-ms", "20", "--budget-kb", "128", "--hysteresis", "3",
       "--track-every", "2", "--decay", "0.25"});
  EXPECT_EQ(o.command, "serve");
  EXPECT_EQ(o.serve_mode, "oneshot");
  EXPECT_DOUBLE_EQ(o.rate, 8000.0);
  EXPECT_DOUBLE_EQ(o.zipf_s, 1.2);
  EXPECT_EQ(o.drift_period, 4);
  EXPECT_EQ(o.windows, 12);
  EXPECT_EQ(o.window_ms, 20);
  EXPECT_EQ(o.budget_kb, 128);
  EXPECT_EQ(o.hysteresis, 3);
  EXPECT_EQ(o.track_every, 2);
  EXPECT_DOUBLE_EQ(o.decay, 0.25);
  EXPECT_THROW(parse_ok({"serve", "--windows", "0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_ok({"serve", "--rate", "-1"}), std::invalid_argument);
}

TEST(CliRun, ServeReportsWindowsAndTotals) {
  Options o = parse_ok({"serve", "--app", "KV", "--threads", "8", "--nodes",
                        "2", "--windows", "3", "--rate", "4000"});
  std::ostringstream out;
  ASSERT_EQ(run(o, out), 0);
  EXPECT_NE(out.str().find("p99(us)"), std::string::npos);
  EXPECT_NE(out.str().find("total:"), std::string::npos);
  EXPECT_NE(out.str().find("tracked mode"), std::string::npos);
}

TEST(CliMain, ServeRejectsNonServiceApps) {
  std::ostringstream out, err;
  EXPECT_EQ(main_impl({"serve", "--app", "SOR", "--windows", "2"}, out, err),
            2);
  EXPECT_NE(err.str().find("KV or Graph"), std::string::npos);
}

TEST(CliMain, BadArgsPrintUsageAndReturn2) {
  std::ostringstream out, err;
  EXPECT_EQ(main_impl({"nonsense"}, out, err), 2);
  EXPECT_NE(err.str().find("usage:"), std::string::npos);
}

TEST(CliMain, UnknownAppSurfacesCleanly) {
  std::ostringstream out, err;
  // make_workload throws invalid_argument → handled as a usage error.
  EXPECT_EQ(main_impl({"info", "--app", "NoSuchApp"}, out, err), 2);
}

}  // namespace
}  // namespace actrack::cli
