// Replays every checked-in corpus trace (tests/corpus/*.actrace)
// through the full checker grid.  The corpus pins down scenarios the
// random fuzzer only hits probabilistically — lock handoff chains, GC
// churn, migration with live multi-writer pages — so a protocol
// regression in one of them fails here deterministically with the
// trace name attached.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/trace_workload.hpp"
#include "check/checker.hpp"
#include "runtime/cluster_runtime.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_utils.hpp"

namespace actrack::check {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_paths() {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(ACTRACK_CORPUS_DIR)) {
    if (entry.path().extension() == ".actrace") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

bool uses_lock(const TraceFile& trace) {
  for (const auto& iteration : trace.iterations) {
    for (const auto& phase : iteration.phases) {
      for (const auto& thread : phase.threads) {
        for (const auto& segment : thread.segments) {
          if (segment.lock_id >= 0) return true;
        }
      }
    }
  }
  return false;
}

TEST(Corpus, HasAtLeastThreeTraces) {
  EXPECT_GE(corpus_paths().size(), 3u);
}

TEST(Corpus, EveryTraceIsValidAndUsesLocks) {
  for (const fs::path& path : corpus_paths()) {
    SCOPED_TRACE(path.filename().string());
    const TraceFile trace = load_trace_file(path.string());
    EXPECT_GE(trace.num_threads, 2);
    ASSERT_FALSE(trace.iterations.empty());
    for (const auto& iteration : trace.iterations) {
      EXPECT_NO_THROW(validate_trace(iteration, trace.num_pages));
    }
    // Each corpus scenario includes at least one critical section, so
    // lock-transfer propagation is exercised by every replay.
    EXPECT_TRUE(uses_lock(trace));
  }
}

TEST(Corpus, EveryTraceIsCleanUnderTheFullVariantGrid) {
  const std::vector<CheckVariant> variants = standard_variants();
  for (const fs::path& path : corpus_paths()) {
    SCOPED_TRACE(path.filename().string());
    const TraceFile trace = load_trace_file(path.string());
    std::int64_t checks = 0;
    for (const CheckVariant& variant : variants) {
      SCOPED_TRACE(variant.name());
      ASSERT_NO_THROW(checks += check_trace_variant(trace, variant));
    }
    EXPECT_GT(checks, 0);
  }
}

TEST(Corpus, GcChurnTraceActuallyTriggersGc) {
  // The gc_churn trace exists to exercise consolidation; make sure it
  // really trips the aggressive-GC threshold the +gc variants use
  // (otherwise the corpus would silently stop covering GC).
  const fs::path path = fs::path(ACTRACK_CORPUS_DIR) / "gc_churn.actrace";
  const TraceFile trace = load_trace_file(path.string());
  TraceWorkload workload(trace, "gc_churn");
  RuntimeConfig config;
  config.dsm.gc_enabled = true;
  config.dsm.gc_threshold_bytes = 512;
  ClusterRuntime runtime(workload, Placement::stretch(workload.num_threads(), 3),
                         config);
  runtime.run_init();
  for (std::size_t i = 1; i < trace.iterations.size(); ++i) {
    runtime.run_iteration();
  }
  EXPECT_GT(runtime.dsm().stats().gc_runs, 0);
}

}  // namespace
}  // namespace actrack::check
