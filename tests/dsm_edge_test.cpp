// Protocol edge cases beyond the main suite: multi-page GC, epoch
// arithmetic across mixed sync, mid-interval multi-writer survival,
// page-home distribution, and cost-accounting invariants.  The newer
// cases run with the src/check oracle + auditor attached, so the edge
// behaviour is asserted protocol-clean, not merely non-crashing.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "apps/trace_workload.hpp"
#include "check/auditor.hpp"
#include "check/checker.hpp"
#include "check/oracle.hpp"
#include "check/workload_gen.hpp"
#include "common/rng.hpp"
#include "dsm/protocol.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack {
namespace {

PageAccess read_of(PageId page) { return {page, AccessKind::kRead, 0}; }
PageAccess write_of(PageId page, std::int32_t bytes = 128) {
  return {page, AccessKind::kWrite, bytes};
}

class DsmEdgeTest : public ::testing::Test {
 protected:
  void make(PageId pages, NodeId nodes, DsmConfig config = {}) {
    net_ = std::make_unique<NetworkModel>(nodes, CostModel{});
    dsm_ = std::make_unique<DsmSystem>(pages, nodes, net_.get(), config);
  }
  void barrier() {
    for (NodeId n = 0; n < dsm_->num_nodes(); ++n) dsm_->release_node(n);
    dsm_->barrier_epoch();
  }
  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<DsmSystem> dsm_;
};

TEST_F(DsmEdgeTest, PageHomesAreRoundRobin) {
  make(16, 4);
  // Reading page p from node p%4 is local; from any other node remote.
  for (PageId p = 0; p < 8; ++p) {
    const NodeId home = p % 4;
    const AccessOutcome local = dsm_->access(home, 0, read_of(p));
    EXPECT_FALSE(local.remote_miss) << p;
    const NodeId other = (home + 1) % 4;
    const AccessOutcome remote = dsm_->access(other, 1, read_of(p));
    EXPECT_TRUE(remote.remote_miss) << p;
  }
}

TEST_F(DsmEdgeTest, GcConsolidatesManyPagesAtOnce) {
  DsmConfig config;
  config.gc_threshold_bytes = 1000;
  make(32, 2, config);
  for (PageId p = 0; p < 10; ++p) {
    dsm_->access(0, 0, write_of(p, 200));  // 2000 B of diffs
  }
  barrier();
  EXPECT_EQ(dsm_->stats().gc_runs, 1);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), 0);
  for (PageId p = 0; p < 10; ++p) {
    EXPECT_EQ(dsm_->page_state(0, p), PageState::kReadOnly) << p;
  }
}

TEST_F(DsmEdgeTest, GcSpansMultipleThresholdCycles) {
  DsmConfig config;
  config.gc_threshold_bytes = 300;
  make(8, 2, config);
  for (int round = 0; round < 5; ++round) {
    dsm_->access(0, 0, write_of(0, 400));
    barrier();
  }
  EXPECT_EQ(dsm_->stats().gc_runs, 5);
}

TEST_F(DsmEdgeTest, DirtyPageSurvivesLockInvalidationAndReconciles) {
  make(8, 2);
  // Node 1 writes page 0 (dirty) while node 0 also writes and releases
  // it; node 1 then acquires the lock mid-interval.
  dsm_->access(1, 1, write_of(0, 64));
  dsm_->access(0, 0, write_of(0, 64));
  dsm_->release_node(0);
  dsm_->lock_transfer(0, 1);
  // The dirty replica must remain writable (twin holds local mods).
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kReadWrite);
  // Node 1 keeps writing, then the barrier reconciles: node 1 is now
  // behind (missed node 0's diff) and gets invalidated once clean.
  dsm_->access(1, 1, write_of(0, 32));
  barrier();
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);
  // Its next read fetches only node 0's diff (never its own records).
  net_->reset_counters();
  dsm_->access(1, 1, read_of(0));
  EXPECT_EQ(net_->totals().diff_bytes, 64);
}

TEST_F(DsmEdgeTest, EpochCountsMixedSyncOperations) {
  make(4, 2);
  const std::int64_t start = dsm_->epoch();
  barrier();
  dsm_->lock_transfer(kNoNode, 0);
  dsm_->lock_transfer(0, 1);
  barrier();
  EXPECT_EQ(dsm_->epoch(), start + 4);
}

TEST_F(DsmEdgeTest, AccessCostsAreNonNegativeAndConsistent) {
  make(8, 2);
  for (int step = 0; step < 20; ++step) {
    const PageId page = step % 8;
    const AccessOutcome out =
        dsm_->access(step % 2, step % 4,
                     (step % 3 == 0) ? write_of(page) : read_of(page));
    EXPECT_GE(out.local_us, 0);
    EXPECT_GE(out.remote_us, 0);
    if (out.remote_miss) {
      EXPECT_TRUE(out.read_fault || out.write_fault);
      EXPECT_GT(out.remote_us, 0);
    }
    if (step % 5 == 0) barrier();
  }
}

TEST_F(DsmEdgeTest, WriteBytesAreClampedToPageSize) {
  make(4, 1);
  dsm_->access(0, 0, write_of(0, kPageSize));
  dsm_->access(0, 0, write_of(0, kPageSize));
  dsm_->release_node(0);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), kPageSize);
}

TEST_F(DsmEdgeTest, ZeroByteWriteStillCreatesMinimalDiff) {
  make(4, 1);
  dsm_->access(0, 0, write_of(0, 0));
  dsm_->release_node(0);
  EXPECT_GT(dsm_->outstanding_diff_bytes(), 0);
}

TEST_F(DsmEdgeTest, SixtyFourNodesSupported) {
  // The SC copyset is a 64-bit mask; make sure a full-width cluster
  // works in both protocols.
  DsmConfig sc;
  sc.model = ConsistencyModel::kSequentialSingleWriter;
  make(64, 64, sc);
  for (NodeId n = 0; n < 64; ++n) {
    dsm_->access(n, n, read_of(0));
  }
  dsm_->access(63, 63, write_of(0));
  EXPECT_EQ(dsm_->stats().invalidations, 63);
  for (NodeId n = 0; n < 63; ++n) {
    EXPECT_NE(dsm_->page_state(n, 0), PageState::kReadOnly);
  }
}

// Edge fixture with the shadow oracle + invariant auditor attached:
// every access, release, lock transfer, barrier and GC pass in these
// scenarios is asserted protocol-clean, not merely non-crashing.
class CheckedDsmEdgeTest : public DsmEdgeTest {
 protected:
  void attach() {
    oracle_ = std::make_unique<check::ShadowOracle>(dsm_.get());
    auditor_ = std::make_unique<check::InvariantAuditor>(dsm_.get());
    chain_.add(oracle_.get());
    chain_.add(auditor_.get());
    dsm_->set_check_hook(&chain_);
  }
  std::unique_ptr<check::ShadowOracle> oracle_;
  std::unique_ptr<check::InvariantAuditor> auditor_;
  check::CheckHookChain chain_;
};

TEST_F(CheckedDsmEdgeTest, GcAtMigrationSyncPointIsAuditorClean) {
  DsmConfig config;
  config.gc_threshold_bytes = 300;
  make(8, 3, config);
  attach();
  // Writers on every node pile up diffs well past the GC threshold...
  dsm_->access(0, 0, write_of(0, 200));
  dsm_->access(0, 0, write_of(1, 200));
  dsm_->access(1, 1, write_of(2, 200));
  dsm_->access(1, 1, write_of(0, 100));  // multi-writer on page 0
  dsm_->access(2, 2, write_of(3, 200));
  // ...then the migration synchronisation point (ClusterScheduler::
  // migrate flushes every node and barriers) consolidates mid-move.
  ASSERT_NO_THROW(barrier());
  EXPECT_EQ(dsm_->stats().gc_runs, 1);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), 0);
  // The migrated threads' first faults land on post-GC full pages.
  ASSERT_NO_THROW(dsm_->access(2, 2, read_of(0)));
  ASSERT_NO_THROW(dsm_->access(0, 0, read_of(2)));
  ASSERT_NO_THROW(barrier());
  EXPECT_GE(auditor_->barrier_audits(), 2);
  EXPECT_GT(oracle_->checks_performed(), 0);
}

TEST_F(CheckedDsmEdgeTest, BackToBackLockReleasesStayAuditorClean) {
  make(8, 3);
  attach();
  // Node 0 releases twice in a row (the second one empty), then the
  // lock bounces through every node with releases packed back to back
  // and no intervening barrier.
  dsm_->lock_transfer(kNoNode, 0);
  dsm_->access(0, 0, write_of(0, 64));
  dsm_->release_node(0);  // publishes the diff
  dsm_->release_node(0);  // immediate empty re-release
  dsm_->lock_transfer(0, 1);
  dsm_->access(1, 1, write_of(0, 32));
  dsm_->access(1, 1, write_of(1, 48));
  dsm_->release_node(1);
  dsm_->release_node(1);
  dsm_->lock_transfer(1, 2);  // acquirer holds no stale replica
  dsm_->lock_transfer(2, 0);  // ...and passes the lock straight on
  // Node 0's clean-but-stale replica of page 0 was invalidated by the
  // re-acquire; this read must fetch node 1's diff, and the oracle
  // flags it if the protocol had left the stale copy valid.
  ASSERT_NO_THROW(dsm_->access(0, 0, read_of(0)));
  ASSERT_NO_THROW(barrier());
  EXPECT_GT(oracle_->checks_performed(), 0);
  EXPECT_EQ(auditor_->barrier_audits(), 1);
}

TEST_F(DsmEdgeTest, MigrationUnderAggressiveGcIsCheckerClean) {
  // Full-runtime version of the GC-during-migration case: a random
  // trace replayed with a mid-run migration to the reversed placement
  // and the GC threshold squeezed, the oracle + auditor watching every
  // barrier (including the migration's own flush + barrier).
  Rng rng(0xace);
  const TraceFile trace = check::random_trace(rng, 6, 8, 3);
  TraceWorkload workload(trace, "edge");
  RuntimeConfig config;
  config.dsm.gc_enabled = true;
  config.dsm.gc_threshold_bytes = 512;
  ClusterRuntime runtime(workload, Placement::stretch(6, 3), config);
  check::ShadowOracle oracle(&runtime.dsm());
  check::InvariantAuditor auditor(&runtime.dsm());
  check::CheckHookChain chain;
  chain.add(&oracle);
  chain.add(&auditor);
  runtime.dsm().set_check_hook(&chain);

  runtime.run_init();
  runtime.run_iteration();
  std::vector<NodeId> reversed = runtime.placement().node_of_thread();
  for (NodeId& node : reversed) node = 2 - node;
  ASSERT_NO_THROW(runtime.migrate_to(Placement{std::move(reversed), 3}));
  runtime.run_iteration();
  EXPECT_GT(runtime.dsm().stats().gc_runs, 0);
  EXPECT_GT(oracle.checks_performed(), 0);
  EXPECT_GT(auditor.barrier_audits(), 0);
}

TEST_F(DsmEdgeTest, ManyWritersOnePageAllReconcile) {
  make(4, 8);
  for (NodeId n = 0; n < 8; ++n) {
    dsm_->access(n, n, write_of(0, 100));
  }
  barrier();
  // Everyone missed everyone else's diffs.
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(dsm_->page_state(n, 0), PageState::kInvalid);
  }
  net_->reset_counters();
  dsm_->access(3, 3, read_of(0));
  // Node 3 fetches the other seven 100-byte diffs.
  EXPECT_EQ(dsm_->stats().diff_fetches, 7);
  EXPECT_EQ(net_->totals().diff_bytes, 700);
}

}  // namespace
}  // namespace actrack
