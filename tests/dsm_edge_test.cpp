// Protocol edge cases beyond the main suite: multi-page GC, epoch
// arithmetic across mixed sync, mid-interval multi-writer survival,
// page-home distribution, and cost-accounting invariants.
#include <gtest/gtest.h>

#include <memory>

#include "dsm/protocol.hpp"

namespace actrack {
namespace {

PageAccess read_of(PageId page) { return {page, AccessKind::kRead, 0}; }
PageAccess write_of(PageId page, std::int32_t bytes = 128) {
  return {page, AccessKind::kWrite, bytes};
}

class DsmEdgeTest : public ::testing::Test {
 protected:
  void make(PageId pages, NodeId nodes, DsmConfig config = {}) {
    net_ = std::make_unique<NetworkModel>(nodes, CostModel{});
    dsm_ = std::make_unique<DsmSystem>(pages, nodes, net_.get(), config);
  }
  void barrier() {
    for (NodeId n = 0; n < dsm_->num_nodes(); ++n) dsm_->release_node(n);
    dsm_->barrier_epoch();
  }
  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<DsmSystem> dsm_;
};

TEST_F(DsmEdgeTest, PageHomesAreRoundRobin) {
  make(16, 4);
  // Reading page p from node p%4 is local; from any other node remote.
  for (PageId p = 0; p < 8; ++p) {
    const NodeId home = p % 4;
    const AccessOutcome local = dsm_->access(home, 0, read_of(p));
    EXPECT_FALSE(local.remote_miss) << p;
    const NodeId other = (home + 1) % 4;
    const AccessOutcome remote = dsm_->access(other, 1, read_of(p));
    EXPECT_TRUE(remote.remote_miss) << p;
  }
}

TEST_F(DsmEdgeTest, GcConsolidatesManyPagesAtOnce) {
  DsmConfig config;
  config.gc_threshold_bytes = 1000;
  make(32, 2, config);
  for (PageId p = 0; p < 10; ++p) {
    dsm_->access(0, 0, write_of(p, 200));  // 2000 B of diffs
  }
  barrier();
  EXPECT_EQ(dsm_->stats().gc_runs, 1);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), 0);
  for (PageId p = 0; p < 10; ++p) {
    EXPECT_EQ(dsm_->page_state(0, p), PageState::kReadOnly) << p;
  }
}

TEST_F(DsmEdgeTest, GcSpansMultipleThresholdCycles) {
  DsmConfig config;
  config.gc_threshold_bytes = 300;
  make(8, 2, config);
  for (int round = 0; round < 5; ++round) {
    dsm_->access(0, 0, write_of(0, 400));
    barrier();
  }
  EXPECT_EQ(dsm_->stats().gc_runs, 5);
}

TEST_F(DsmEdgeTest, DirtyPageSurvivesLockInvalidationAndReconciles) {
  make(8, 2);
  // Node 1 writes page 0 (dirty) while node 0 also writes and releases
  // it; node 1 then acquires the lock mid-interval.
  dsm_->access(1, 1, write_of(0, 64));
  dsm_->access(0, 0, write_of(0, 64));
  dsm_->release_node(0);
  dsm_->lock_transfer(0, 1);
  // The dirty replica must remain writable (twin holds local mods).
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kReadWrite);
  // Node 1 keeps writing, then the barrier reconciles: node 1 is now
  // behind (missed node 0's diff) and gets invalidated once clean.
  dsm_->access(1, 1, write_of(0, 32));
  barrier();
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);
  // Its next read fetches only node 0's diff (never its own records).
  net_->reset_counters();
  dsm_->access(1, 1, read_of(0));
  EXPECT_EQ(net_->totals().diff_bytes, 64);
}

TEST_F(DsmEdgeTest, EpochCountsMixedSyncOperations) {
  make(4, 2);
  const std::int64_t start = dsm_->epoch();
  barrier();
  dsm_->lock_transfer(kNoNode, 0);
  dsm_->lock_transfer(0, 1);
  barrier();
  EXPECT_EQ(dsm_->epoch(), start + 4);
}

TEST_F(DsmEdgeTest, AccessCostsAreNonNegativeAndConsistent) {
  make(8, 2);
  for (int step = 0; step < 20; ++step) {
    const PageId page = step % 8;
    const AccessOutcome out =
        dsm_->access(step % 2, step % 4,
                     (step % 3 == 0) ? write_of(page) : read_of(page));
    EXPECT_GE(out.local_us, 0);
    EXPECT_GE(out.remote_us, 0);
    if (out.remote_miss) {
      EXPECT_TRUE(out.read_fault || out.write_fault);
      EXPECT_GT(out.remote_us, 0);
    }
    if (step % 5 == 0) barrier();
  }
}

TEST_F(DsmEdgeTest, WriteBytesAreClampedToPageSize) {
  make(4, 1);
  dsm_->access(0, 0, write_of(0, kPageSize));
  dsm_->access(0, 0, write_of(0, kPageSize));
  dsm_->release_node(0);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), kPageSize);
}

TEST_F(DsmEdgeTest, ZeroByteWriteStillCreatesMinimalDiff) {
  make(4, 1);
  dsm_->access(0, 0, write_of(0, 0));
  dsm_->release_node(0);
  EXPECT_GT(dsm_->outstanding_diff_bytes(), 0);
}

TEST_F(DsmEdgeTest, SixtyFourNodesSupported) {
  // The SC copyset is a 64-bit mask; make sure a full-width cluster
  // works in both protocols.
  DsmConfig sc;
  sc.model = ConsistencyModel::kSequentialSingleWriter;
  make(64, 64, sc);
  for (NodeId n = 0; n < 64; ++n) {
    dsm_->access(n, n, read_of(0));
  }
  dsm_->access(63, 63, write_of(0));
  EXPECT_EQ(dsm_->stats().invalidations, 63);
  for (NodeId n = 0; n < 63; ++n) {
    EXPECT_NE(dsm_->page_state(n, 0), PageState::kReadOnly);
  }
}

TEST_F(DsmEdgeTest, ManyWritersOnePageAllReconcile) {
  make(4, 8);
  for (NodeId n = 0; n < 8; ++n) {
    dsm_->access(n, n, write_of(0, 100));
  }
  barrier();
  // Everyone missed everyone else's diffs.
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_EQ(dsm_->page_state(n, 0), PageState::kInvalid);
  }
  net_->reset_counters();
  dsm_->access(3, 3, read_of(0));
  // Node 3 fetches the other seven 100-byte diffs.
  EXPECT_EQ(dsm_->stats().diff_fetches, 7);
  EXPECT_EQ(net_->totals().diff_bytes, 700);
}

}  // namespace
}  // namespace actrack
