#include "dsm/protocol.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace actrack {
namespace {

PageAccess read_of(PageId page) { return {page, AccessKind::kRead, 0}; }
PageAccess write_of(PageId page, std::int32_t bytes = 128) {
  return {page, AccessKind::kWrite, bytes};
}

class DsmTest : public ::testing::Test {
 protected:
  void make(PageId pages, NodeId nodes, DsmConfig config = {}) {
    net_ = std::make_unique<NetworkModel>(nodes, CostModel{});
    dsm_ = std::make_unique<DsmSystem>(pages, nodes, net_.get(), config);
  }

  /// Full sync: all nodes release, then the barrier applies notices.
  void barrier() {
    for (NodeId n = 0; n < dsm_->num_nodes(); ++n) {
      dsm_->release_node(n);
    }
    dsm_->barrier_epoch();
  }

  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<DsmSystem> dsm_;
};

TEST_F(DsmTest, PagesStartUnmapped) {
  make(8, 2);
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kUnmapped);
  EXPECT_EQ(dsm_->page_state(1, 7), PageState::kUnmapped);
}

TEST_F(DsmTest, FirstReadFromHomeNodeIsLocal) {
  make(8, 4);
  // Page 0's home (manager) is node 0: mapping it needs no remote data.
  const AccessOutcome out = dsm_->access(0, 0, read_of(0));
  EXPECT_TRUE(out.read_fault);
  EXPECT_FALSE(out.remote_miss);
  EXPECT_EQ(out.remote_us, 0);
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kReadOnly);
}

TEST_F(DsmTest, FirstReadFromOtherNodeFetchesFullPage) {
  make(8, 4);
  const AccessOutcome out = dsm_->access(1, 0, read_of(0));  // home is 0
  EXPECT_TRUE(out.read_fault);
  EXPECT_TRUE(out.remote_miss);
  EXPECT_GT(out.remote_us, 0);
  EXPECT_EQ(dsm_->stats().full_page_fetches, 1);
  EXPECT_EQ(net_->totals().page_bytes, kPageSize);
}

TEST_F(DsmTest, SecondReadIsFree) {
  make(8, 2);
  dsm_->access(1, 0, read_of(0));
  const AccessOutcome out = dsm_->access(1, 0, read_of(0));
  EXPECT_FALSE(out.read_fault);
  EXPECT_EQ(out.local_us, 0);
  EXPECT_EQ(out.remote_us, 0);
}

TEST_F(DsmTest, WriteToReadOnlyCreatesTwin) {
  make(8, 2);
  dsm_->access(0, 0, read_of(0));
  const AccessOutcome out = dsm_->access(0, 0, write_of(0));
  EXPECT_TRUE(out.write_fault);
  EXPECT_FALSE(out.remote_miss);  // replica was valid
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kReadWrite);
  // Subsequent writes proceed transparently.
  const AccessOutcome again = dsm_->access(0, 0, write_of(0));
  EXPECT_FALSE(again.write_fault);
}

TEST_F(DsmTest, ReleaseCreatesDiffAndReprotects) {
  make(8, 2);
  dsm_->access(0, 0, write_of(0, 256));
  EXPECT_GT(dsm_->release_node(0), 0);
  EXPECT_EQ(dsm_->stats().diffs_created, 1);
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kReadOnly);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), 256);
}

TEST_F(DsmTest, BarrierInvalidatesStaleReplicas) {
  make(8, 3);
  // Node 1 and 2 read page 0; node 0 writes it.
  dsm_->access(1, 0, read_of(0));
  dsm_->access(2, 0, read_of(0));
  dsm_->access(0, 0, write_of(0));
  barrier();
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);
  EXPECT_EQ(dsm_->page_state(2, 0), PageState::kInvalid);
  // The writer keeps its (current) copy.
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kReadOnly);
  EXPECT_EQ(dsm_->stats().invalidations, 2);
}

TEST_F(DsmTest, InvalidReadFetchesDiffFromWriter) {
  make(8, 2);
  dsm_->access(1, 0, read_of(0));
  dsm_->access(0, 0, write_of(0, 512));
  barrier();
  net_->reset_counters();
  const AccessOutcome out = dsm_->access(1, 0, read_of(0));
  EXPECT_TRUE(out.remote_miss);
  EXPECT_EQ(dsm_->stats().diff_fetches, 1);
  EXPECT_EQ(net_->totals().diff_bytes, 512);
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kReadOnly);
}

TEST_F(DsmTest, ConcurrentWritersFetchOnlyEachOthersDiffs) {
  make(8, 2);
  // Both nodes map the page and write disjoint parts (multi-writer).
  dsm_->access(0, 0, write_of(0, 100));
  dsm_->access(1, 1, write_of(0, 200));
  barrier();
  // Both got invalidated (each missed the other's diff).
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kInvalid);
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);

  net_->reset_counters();
  dsm_->access(0, 0, read_of(0));
  // Node 0 needs only node 1's 200-byte diff, not its own.
  EXPECT_EQ(net_->totals().diff_bytes, 200);
  net_->reset_counters();
  dsm_->access(1, 1, read_of(0));
  EXPECT_EQ(net_->totals().diff_bytes, 100);
}

TEST_F(DsmTest, SoleWriterIsNotInvalidatedBySelf) {
  make(8, 2);
  dsm_->access(0, 0, write_of(0));
  barrier();
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kReadOnly);
  const AccessOutcome out = dsm_->access(0, 0, read_of(0));
  EXPECT_FALSE(out.read_fault);
}

TEST_F(DsmTest, WriteToInvalidPageValidatesThenTwins) {
  make(8, 2);
  dsm_->access(1, 0, read_of(0));
  dsm_->access(0, 0, write_of(0));
  barrier();
  const AccessOutcome out = dsm_->access(1, 1, write_of(0));
  EXPECT_TRUE(out.write_fault);
  EXPECT_TRUE(out.remote_miss);
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kReadWrite);
}

TEST_F(DsmTest, RepeatedIntervalWritesRequireNewTwinEachInterval) {
  make(8, 2);
  dsm_->access(0, 0, write_of(0));
  barrier();
  const std::int64_t faults_before = dsm_->stats().write_faults;
  dsm_->access(0, 0, write_of(0));
  EXPECT_EQ(dsm_->stats().write_faults, faults_before + 1);
}

TEST_F(DsmTest, LockTransferInvalidatesOnlyAcquirer) {
  make(8, 3);
  dsm_->access(1, 1, read_of(0));
  dsm_->access(2, 2, read_of(0));
  dsm_->access(0, 0, write_of(0));
  dsm_->release_node(0);  // lock release flushes
  dsm_->lock_transfer(0, 1);
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);
  EXPECT_EQ(dsm_->page_state(2, 0), PageState::kReadOnly);  // not yet
}

TEST_F(DsmTest, EpochAdvancesOnSync) {
  make(4, 2);
  const std::int64_t e0 = dsm_->epoch();
  barrier();
  EXPECT_EQ(dsm_->epoch(), e0 + 1);
  dsm_->lock_transfer(0, 1);
  EXPECT_EQ(dsm_->epoch(), e0 + 2);
}

TEST_F(DsmTest, BarrierBeforeReleaseThrows) {
  make(4, 2);
  dsm_->access(0, 0, write_of(1));
  EXPECT_THROW(dsm_->barrier_epoch(), std::logic_error);
}

TEST_F(DsmTest, GarbageCollectionConsolidatesAndInvalidates) {
  DsmConfig config;
  config.gc_threshold_bytes = 600;
  make(8, 3, config);
  // Epoch 1: nodes 0 and 1 write page 0 (500 B of diffs, under the
  // threshold).
  dsm_->access(0, 0, write_of(0, 200));
  dsm_->access(1, 1, write_of(0, 300));
  barrier();
  EXPECT_EQ(dsm_->stats().gc_runs, 0);
  // Epoch 2: node 2 reads page 0 — its replica is now fully current —
  // and node 0 writes another page, pushing diff storage over the
  // threshold.
  dsm_->access(2, 2, read_of(0));
  dsm_->access(0, 0, write_of(1, 200));
  barrier();  // 700 B outstanding → GC

  EXPECT_EQ(dsm_->stats().gc_runs, 1);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), 0);
  // Page 0's last writer (node 1) owns the consolidated copy; node 2's
  // perfectly current replica is invalidated anyway — the paper's §2
  // source of extra remote faults.
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kReadOnly);
  EXPECT_EQ(dsm_->page_state(2, 0), PageState::kInvalid);
  EXPECT_GE(dsm_->stats().gc_invalidations, 1);

  // A subsequent miss fetches the full consolidated page from the owner.
  net_->reset_counters();
  const AccessOutcome out = dsm_->access(2, 2, read_of(0));
  EXPECT_TRUE(out.remote_miss);
  EXPECT_EQ(net_->totals().page_bytes, kPageSize);
}

TEST_F(DsmTest, GcDisabledNeverRuns) {
  DsmConfig config;
  config.gc_threshold_bytes = 1;
  config.gc_enabled = false;
  make(8, 2, config);
  dsm_->access(0, 0, write_of(0, 4000));
  barrier();
  EXPECT_EQ(dsm_->stats().gc_runs, 0);
  EXPECT_GT(dsm_->outstanding_diff_bytes(), 0);
}

TEST_F(DsmTest, RemoteMissObserverSeesFaultingThread) {
  make(8, 2);
  std::vector<std::tuple<NodeId, ThreadId, PageId>> misses;
  dsm_->set_remote_miss_observer(
      [&](NodeId node, ThreadId thread, PageId page) {
        misses.emplace_back(node, thread, page);
      });
  dsm_->access(0, 3, write_of(2));
  barrier();
  dsm_->access(1, 7, read_of(2));
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0], std::make_tuple(NodeId{1}, ThreadId{7}, PageId{2}));
}

TEST_F(DsmTest, OnlyFirstLocalThreadFaults) {
  // The crux of §4.1: once thread 3 validates the page on node 1,
  // thread 4's access on the same node is invisible.
  make(8, 2);
  dsm_->access(0, 0, write_of(2));
  barrier();
  std::int32_t observer_calls = 0;
  dsm_->set_remote_miss_observer(
      [&](NodeId, ThreadId, PageId) { ++observer_calls; });
  dsm_->access(1, 3, read_of(2));
  dsm_->access(1, 4, read_of(2));
  EXPECT_EQ(observer_calls, 1);
}

TEST_F(DsmTest, StatsCoherenceFaultsSumReadsAndWrites) {
  make(8, 2);
  dsm_->access(0, 0, read_of(0));   // read fault
  dsm_->access(0, 0, write_of(0)); // write fault
  EXPECT_EQ(dsm_->stats().coherence_faults(),
            dsm_->stats().read_faults + dsm_->stats().write_faults);
  EXPECT_EQ(dsm_->stats().read_faults, 1);
  EXPECT_EQ(dsm_->stats().write_faults, 1);
}

TEST_F(DsmTest, DiffsFromMultipleIntervalsAccumulateForLateReader) {
  make(8, 2);
  dsm_->access(0, 0, write_of(0, 100));
  barrier();
  dsm_->access(0, 0, write_of(0, 150));
  barrier();
  net_->reset_counters();
  dsm_->access(1, 1, read_of(0));
  // One exchange with the single writer carrying both diffs.
  EXPECT_EQ(dsm_->stats().diff_fetches, 1);
  EXPECT_EQ(net_->totals().diff_bytes, 250);
}

TEST_F(DsmTest, InvalidAccessorRejected) {
  make(4, 2);
  EXPECT_THROW(dsm_->access(2, 0, read_of(0)), std::logic_error);
  EXPECT_THROW(dsm_->access(0, 0, read_of(4)), std::logic_error);
}

}  // namespace
}  // namespace actrack
