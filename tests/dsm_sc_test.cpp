// Tests of the sequentially-consistent single-writer protocol (§6's
// baseline family: Millipede/PARSEC-era DSMs) and the Mirage delta
// interval.
#include <gtest/gtest.h>

#include <memory>

#include "apps/synthetic.hpp"
#include "dsm/protocol.hpp"
#include "runtime/cluster_runtime.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

PageAccess read_of(PageId page) { return {page, AccessKind::kRead, 0}; }
PageAccess write_of(PageId page, std::int32_t bytes = 128) {
  return {page, AccessKind::kWrite, bytes};
}

class ScDsmTest : public ::testing::Test {
 protected:
  void make(PageId pages, NodeId nodes, SimTime delta_us = 0) {
    DsmConfig config;
    config.model = ConsistencyModel::kSequentialSingleWriter;
    config.delta_interval_us = delta_us;
    net_ = std::make_unique<NetworkModel>(nodes, CostModel{});
    dsm_ = std::make_unique<DsmSystem>(pages, nodes, net_.get(), config);
  }

  void barrier() {
    for (NodeId n = 0; n < dsm_->num_nodes(); ++n) dsm_->release_node(n);
    dsm_->barrier_epoch();
  }

  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<DsmSystem> dsm_;
};

TEST_F(ScDsmTest, ReadFromHomeIsLocal) {
  make(8, 4);
  const AccessOutcome out = dsm_->access(0, 0, read_of(0));  // home 0
  EXPECT_TRUE(out.read_fault);
  EXPECT_FALSE(out.remote_miss);
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kReadOnly);
}

TEST_F(ScDsmTest, ReadersShareReplicas) {
  make(8, 4);
  dsm_->access(1, 1, read_of(0));
  dsm_->access(2, 2, read_of(0));
  EXPECT_EQ(dsm_->stats().full_page_fetches, 2);
  // Reads do not invalidate each other.
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kReadOnly);
  EXPECT_EQ(dsm_->page_state(2, 0), PageState::kReadOnly);
  EXPECT_EQ(dsm_->stats().invalidations, 0);
}

TEST_F(ScDsmTest, WriteInvalidatesAllReplicasImmediately) {
  make(8, 4);
  dsm_->access(1, 1, read_of(0));
  dsm_->access(2, 2, read_of(0));
  const AccessOutcome out = dsm_->access(3, 3, write_of(0));
  EXPECT_TRUE(out.write_fault);
  EXPECT_TRUE(out.remote_miss);
  // Unlike LRC, no barrier is needed: replicas are already gone.
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);
  EXPECT_EQ(dsm_->page_state(2, 0), PageState::kInvalid);
  EXPECT_EQ(dsm_->page_state(3, 0), PageState::kReadWrite);
  EXPECT_GE(dsm_->stats().invalidations, 2);
}

TEST_F(ScDsmTest, WriterKeepsExclusiveAccess) {
  make(8, 2);
  dsm_->access(0, 0, write_of(0));
  const AccessOutcome again = dsm_->access(0, 0, write_of(0));
  EXPECT_FALSE(again.write_fault);
  EXPECT_EQ(dsm_->stats().ownership_transfers, 0);  // home was 0
}

TEST_F(ScDsmTest, WritePingPongCountsOwnershipTransfers) {
  make(8, 2);
  dsm_->access(0, 0, write_of(1));  // page 1: home node 1 → transfer
  dsm_->access(1, 1, write_of(1));  // steal back
  dsm_->access(0, 0, write_of(1));  // steal again
  EXPECT_EQ(dsm_->stats().ownership_transfers, 3);
  EXPECT_EQ(dsm_->stats().remote_misses, 3);
}

TEST_F(ScDsmTest, ReadAfterRemoteWriteRefetches) {
  make(8, 2);
  dsm_->access(0, 0, read_of(1));
  dsm_->access(1, 1, write_of(1));
  const AccessOutcome out = dsm_->access(0, 0, read_of(1));
  EXPECT_TRUE(out.remote_miss);  // replica was eagerly invalidated
}

TEST_F(ScDsmTest, DeltaIntervalStallsRepeatedStealsWithinEpoch) {
  make(8, 2, /*delta_us=*/5000);
  dsm_->access(0, 0, write_of(1));  // first transfer: no stall
  const AccessOutcome first = dsm_->access(1, 1, write_of(1));
  EXPECT_GE(first.remote_us, 5000);  // frozen: pays the delta
  EXPECT_EQ(dsm_->stats().delta_stalls, 1);

  barrier();  // epoch boundary thaws the page
  const AccessOutcome after = dsm_->access(0, 0, write_of(1));
  EXPECT_LT(after.remote_us, 5000);
  EXPECT_EQ(dsm_->stats().delta_stalls, 1);
}

TEST_F(ScDsmTest, ReleaseAndBarrierAreCheapNoOps) {
  make(8, 2);
  dsm_->access(0, 0, write_of(0));
  EXPECT_EQ(dsm_->release_node(0), 0);
  EXPECT_EQ(dsm_->stats().diffs_created, 0);
  EXPECT_EQ(dsm_->outstanding_diff_bytes(), 0);
  dsm_->barrier_epoch();  // must not throw or invalidate anything
  EXPECT_EQ(dsm_->page_state(0, 0), PageState::kReadWrite);
}

TEST_F(ScDsmTest, CopysetTracksClustersBeyondSixtyFourNodes) {
  // sc_copyset used to be a raw 64-bit mask with a hard num_nodes <= 64
  // ceiling; it is a DynamicBitset now, so wide clusters run the
  // single-writer protocol too.
  make(8, 96);
  dsm_->access(63, 63, write_of(0));
  EXPECT_EQ(dsm_->page_state(63, 0), PageState::kReadWrite);
  dsm_->access(95, 95, write_of(0));  // node past the old mask width
  EXPECT_EQ(dsm_->page_state(95, 0), PageState::kReadWrite);
  EXPECT_EQ(dsm_->page_state(63, 0), PageState::kInvalid);
}

TEST_F(ScDsmTest, WideClusterInvalidatesEveryReplica) {
  // Readers on both sides of bit 64 must all be invalidated by one
  // write — the exact corruption the old mask would have wrapped into.
  make(8, 96);
  for (NodeId n : {1, 40, 64, 65, 95}) {
    dsm_->access(n, n, read_of(0));
    EXPECT_EQ(dsm_->page_state(n, 0), PageState::kReadOnly);
  }
  const std::int64_t before = dsm_->stats().invalidations;
  dsm_->access(70, 70, write_of(0));
  EXPECT_EQ(dsm_->stats().invalidations - before, 5);
  for (NodeId n : {1, 40, 64, 65, 95}) {
    EXPECT_EQ(dsm_->page_state(n, 0), PageState::kInvalid);
  }
  EXPECT_EQ(dsm_->page_state(70, 0), PageState::kReadWrite);
}

TEST(LrcNodeWidth, LazyReleaseProtocolHasNoCopysetLimit) {
  // LRC tracks write notices per page history; it never consults the
  // copyset and accepts wide clusters just the same.
  NetworkModel net(65, CostModel{});
  DsmConfig config;  // default: multi-writer LRC
  EXPECT_NO_THROW(DsmSystem(8, 65, &net, config));
}

TEST_F(ScDsmTest, ObserverFiresOnScMisses) {
  make(8, 2);
  std::int32_t calls = 0;
  dsm_->set_remote_miss_observer(
      [&](NodeId, ThreadId, PageId) { ++calls; });
  dsm_->access(0, 0, write_of(1));  // remote home
  dsm_->access(1, 1, read_of(1));   // fetch from new owner
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------
// Protocol-level comparison: §6's argument that relaxed consistency
// hides (false) sharing the single-writer protocol thrashes on.

RuntimeConfig sc_config(SimTime delta_us = 0) {
  RuntimeConfig config;
  config.dsm.model = ConsistencyModel::kSequentialSingleWriter;
  config.dsm.delta_interval_us = delta_us;
  return config;
}

TEST(ScVsLrc, FalseSharingCostsFullPagesUnderSc) {
  // Two threads on different nodes write disjoint 64-byte slots of the
  // same page every interval (classic false sharing).  LRC merges the
  // concurrent writes through 64-byte diffs; SC ping-pongs whole 4 KiB
  // pages with ownership steals — the §6 argument that single-writer
  // systems "suffer from both false and true sharing".
  PairsWithLockWorkload w(4, 2);
  const Placement split({0, 1, 0, 1}, 2);

  ClusterRuntime lrc(w, split);
  lrc.run_init();
  for (int i = 0; i < 4; ++i) lrc.run_iteration();

  ClusterRuntime sc(w, split, sc_config());
  sc.run_init();
  for (int i = 0; i < 4; ++i) sc.run_iteration();

  EXPECT_GT(sc.totals().total_bytes, 2 * lrc.totals().total_bytes);
  EXPECT_GT(sc.dsm().stats().ownership_transfers, 0);
}

TEST(ScVsLrc, DeltaIntervalSlowsThrashingButKeepsMissCount) {
  PairsWithLockWorkload w(4, 2);
  const Placement split({0, 1, 0, 1}, 2);

  ClusterRuntime plain(w, split, sc_config(0));
  plain.run_init();
  for (int i = 0; i < 4; ++i) plain.run_iteration();

  ClusterRuntime delta(w, split, sc_config(3000));
  delta.run_init();
  for (int i = 0; i < 4; ++i) delta.run_iteration();

  EXPECT_EQ(delta.totals().remote_misses, plain.totals().remote_misses);
  EXPECT_GT(delta.totals().elapsed_us, plain.totals().elapsed_us);
}

TEST(ScVsLrc, TrackedBitmapsAreProtocolIndependent) {
  // Active correlation tracking observes accesses, not protocol
  // internals: the bitmaps must be identical under LRC and SC.
  RingWorkload w(8, 3, 1);
  const Placement p = Placement::stretch(8, 2);

  ClusterRuntime lrc(w, p);
  lrc.run_init();
  const auto lrc_maps =
      lrc.run_tracked_iteration().tracking.access_bitmaps;

  ClusterRuntime sc(w, p, sc_config());
  sc.run_init();
  const auto sc_maps = sc.run_tracked_iteration().tracking.access_bitmaps;

  ASSERT_EQ(lrc_maps.size(), sc_maps.size());
  for (std::size_t t = 0; t < lrc_maps.size(); ++t) {
    EXPECT_EQ(lrc_maps[t], sc_maps[t]);
  }
}

TEST(ScVsLrc, ReadOnlySharingIsComparable) {
  // Pure producer/consumer read sharing has no false-sharing penalty:
  // SC should be in the same ballpark as LRC (not 2x worse).
  RingWorkload w(8, 4, 2);
  const Placement p = Placement::stretch(8, 2);

  ClusterRuntime lrc(w, p);
  lrc.run_init();
  lrc.run_iteration();
  const std::int64_t lrc_misses = lrc.run_iteration().remote_misses;

  ClusterRuntime sc(w, p, sc_config());
  sc.run_init();
  sc.run_iteration();
  const std::int64_t sc_misses = sc.run_iteration().remote_misses;

  EXPECT_LE(sc_misses, 2 * lrc_misses + 2);
}

}  // namespace
}  // namespace actrack
