// Tests for the experiment engine (src/exp): the declarative
// spec/schedule semantics, the determinism guarantee that a parallel
// TrialRunner is bit-identical to a serial one, and the sink pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/args.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sink.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack::exp {
namespace {

// A small but heterogeneous sweep: different workloads, schedules and
// placement strategies, plus a probe writing extra columns.  Cheap
// enough to run twice per test.
std::vector<ExperimentSpec> standard_sweep() {
  std::vector<ExperimentSpec> specs;

  ExperimentSpec sor;
  sor.experiment = "exp_test";
  sor.label = "SOR/stretch";
  sor.workload = "SOR";
  sor.threads = 16;
  sor.nodes = 4;
  sor.schedule.settle_iterations = 1;
  sor.schedule.measured_iterations = 2;
  // Sinks require every record of a sweep to share the extras layout,
  // so all three specs carry the same "iterations" column.
  sor.probe = [](const TrialContext& context, TrialRecord& record) {
    record.add_extra("iterations",
                     static_cast<double>(context.runtime->next_iteration()));
  };
  specs.push_back(sor);

  ExperimentSpec water;
  water.experiment = "exp_test";
  water.label = "Water/random";
  water.workload = "Water";
  water.threads = 16;
  water.nodes = 4;
  water.placement = random_placement_fn();
  water.schedule.settle_iterations = 0;
  water.schedule.measured_iterations = 1;
  water.probe = [](const TrialContext& context, TrialRecord& record) {
    record.add_extra("iterations",
                     static_cast<double>(context.runtime->next_iteration()));
  };
  specs.push_back(water);

  ExperimentSpec tracked;
  tracked.experiment = "exp_test";
  tracked.label = "FFT6/tracked";
  tracked.workload = "FFT6";
  tracked.threads = 16;
  tracked.nodes = 4;
  tracked.schedule.settle_iterations = 0;
  tracked.schedule.measured_iterations = 0;
  tracked.schedule.tracked = true;
  tracked.probe = [](const TrialContext& context, TrialRecord& record) {
    record.add_extra("iterations",
                     static_cast<double>(context.tracking != nullptr));
  };
  specs.push_back(tracked);

  return specs;
}

bool records_equal(const TrialRecord& a, const TrialRecord& b) {
  std::ostringstream sa, sb;
  CsvSink(sa).write(a);
  CsvSink(sb).write(b);
  return sa.str() == sb.str() && a.trial == b.trial;
}

TEST(TrialRunner, RunsSpecsInTrialOrder) {
  const std::vector<TrialRecord> records =
      TrialRunner().run(standard_sweep());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].trial, 0);
  EXPECT_EQ(records[0].label, "SOR/stretch");
  EXPECT_EQ(records[1].label, "Water/random");
  EXPECT_EQ(records[2].label, "FFT6/tracked");
  // Measured window excludes init and settling: totals dominate.
  EXPECT_GT(records[0].totals.elapsed_us, records[0].metrics.elapsed_us);
  EXPECT_GT(records[0].metrics.remote_misses, 0);
  // Tracked trial exposes its fault counts.
  EXPECT_GT(records[2].tracking_faults, 0);
  EXPECT_EQ(records[2].extras.front().second, 1.0);
}

TEST(TrialRunner, ParallelRunIsBitIdenticalToSerial) {
  const std::vector<ExperimentSpec> specs = standard_sweep();
  RunnerOptions parallel;
  parallel.jobs = 4;
  const std::vector<TrialRecord> serial = TrialRunner().run(specs);
  const std::vector<TrialRecord> threaded = TrialRunner(parallel).run(specs);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(records_equal(serial[i], threaded[i])) << i;
  }
}

TEST(TrialRunner, ParallelSinkOutputIsByteIdenticalToSerial) {
  const std::vector<ExperimentSpec> specs = standard_sweep();
  const auto csv_of = [&specs](std::int32_t jobs) {
    RunnerOptions options;
    options.jobs = jobs;
    std::ostringstream out;
    CsvSink sink(out);
    TrialRunner(options).run(specs, &sink);
    sink.close();
    return out.str();
  };
  const std::string serial = csv_of(1);
  EXPECT_EQ(serial, csv_of(4));
  EXPECT_EQ(serial, csv_of(16));  // more workers than trials: clamped
}

TEST(TrialRunner, JobsBeyondTrialCountStillRunEverything) {
  RunnerOptions options;
  options.jobs = 32;
  const std::vector<TrialRecord> records =
      TrialRunner(options).run(standard_sweep());
  ASSERT_EQ(records.size(), 3u);
  for (const TrialRecord& record : records) {
    EXPECT_GT(record.totals.elapsed_us, 0);
  }
}

TEST(TrialRunner, BodyTrialsSkipTheSchedule) {
  ExperimentSpec spec;
  spec.experiment = "exp_test";
  spec.label = "body";
  spec.workload = "SOR";
  spec.threads = 16;
  spec.body = [](const TrialContext& context, TrialRecord& record) {
    EXPECT_EQ(context.runtime, nullptr);
    record.metrics.remote_misses = 42;
  };
  const std::vector<TrialRecord> records = TrialRunner().run({spec});
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].metrics.remote_misses, 42);
  EXPECT_EQ(records[0].totals.elapsed_us, 0);
}

TEST(IterationMetricsAdd, SumsCountersAndKeepsWorstImbalance) {
  IterationMetrics sum;
  sum.elapsed_us = 10;
  sum.remote_misses = 1;
  sum.read_faults = 2;
  sum.write_faults = 3;
  sum.messages = 4;
  sum.total_bytes = 100;
  sum.diff_bytes = 50;
  sum.gc_runs = 1;
  sum.load_imbalance = 1.5;

  IterationMetrics step;
  step.elapsed_us = 5;
  step.remote_misses = 10;
  step.read_faults = 20;
  step.write_faults = 30;
  step.messages = 40;
  step.total_bytes = 7;
  step.diff_bytes = 3;
  step.gc_runs = 2;
  step.load_imbalance = 1.2;

  sum.add(step);
  EXPECT_EQ(sum.elapsed_us, 15);
  EXPECT_EQ(sum.remote_misses, 11);
  EXPECT_EQ(sum.read_faults, 22);
  EXPECT_EQ(sum.write_faults, 33);
  EXPECT_EQ(sum.messages, 44);
  EXPECT_EQ(sum.total_bytes, 107);
  EXPECT_EQ(sum.diff_bytes, 53);
  EXPECT_EQ(sum.gc_runs, 3);
  EXPECT_DOUBLE_EQ(sum.load_imbalance, 1.5);  // max, not sum

  IterationMetrics worse;
  worse.load_imbalance = 2.25;
  sum.add(worse);
  EXPECT_DOUBLE_EQ(sum.load_imbalance, 2.25);
}

TEST(CsvSinkTest, WritesHeaderOnceAndOneRowPerRecord) {
  std::ostringstream out;
  CsvSink sink(out);
  TrialRecord record;
  record.trial = 0;
  record.experiment = "exp_test";
  record.label = "a";
  record.workload = "SOR";
  record.add_extra("cut", 12.5);
  sink.write(record);
  record.trial = 1;
  record.label = "b";
  record.extras.back().second = 13.0;
  sink.write(record);
  sink.close();

  std::istringstream lines(out.str());
  std::string header, row_a, row_b, rest;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row_a));
  ASSERT_TRUE(std::getline(lines, row_b));
  EXPECT_FALSE(std::getline(lines, rest));
  EXPECT_EQ(header.rfind("trial,experiment,label,workload", 0), 0u);
  EXPECT_NE(header.find(",m_remote_misses,"), std::string::npos);
  EXPECT_NE(header.find(",dsm_ownership_transfers,"), std::string::npos);
  EXPECT_NE(header.find(",cut"), std::string::npos);
  EXPECT_EQ(row_a.rfind("0,exp_test,a,SOR,", 0), 0u);
  EXPECT_EQ(row_b.rfind("1,exp_test,b,SOR,", 0), 0u);
  EXPECT_NE(row_a.find("12.5"), std::string::npos);
  EXPECT_NE(row_b.find("13"), std::string::npos);
}

TEST(JsonSinkTest, EmitsAnArrayOfFlatObjects) {
  std::ostringstream out;
  JsonSink sink(out);
  TrialRecord record;
  record.experiment = "exp_test";
  record.label = "quote\"me";
  record.workload = "SOR";
  sink.write(record);
  sink.close();
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  EXPECT_NE(json.find("\"experiment\": \"exp_test\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"quote\\\"me\""), std::string::npos);
}

TEST(JsonSinkTest, EmptyRunClosesToEmptyArray) {
  std::ostringstream out;
  JsonSink sink(out);
  sink.close();
  EXPECT_EQ(out.str(), "[]\n");
}

TEST(TableSinkTest, RendersHeadlineColumnsAndExtras) {
  std::ostringstream out;
  TableSink sink(out);
  TrialRecord record;
  record.label = "Water/min-cost";
  record.workload = "Water";
  record.metrics.elapsed_us = 2'500'000;
  record.metrics.remote_misses = 1234;
  record.add_extra("cut", 99.0);
  sink.write(record);
  sink.close();
  EXPECT_NE(out.str().find("label"), std::string::npos);
  EXPECT_NE(out.str().find("cut"), std::string::npos);
  EXPECT_NE(out.str().find("Water/min-cost"), std::string::npos);
  EXPECT_NE(out.str().find("2.500"), std::string::npos);
  EXPECT_NE(out.str().find("1234"), std::string::npos);
}

TEST(ArgParser, RejectsDuplicateFlagDeclarations) {
  // Declaring the same flag twice used to silently register two help
  // entries; whichever paired *_flag call ran second would re-consume
  // (or miss) the argv token.  Now it is a programming error.
  char program[] = "bench";
  char* argv[] = {program};
  ArgParser args(1, argv, "duplicate-flag regression");
  (void)args.int_flag("--configs", 1, "first declaration");
  EXPECT_THROW((void)args.int_flag("--configs", 2, "second declaration"),
               std::logic_error);
  // Also across flag types: the registry is per-name, not per-type.
  EXPECT_THROW((void)args.string_flag("--configs", "x", "as a string"),
               std::logic_error);
  EXPECT_THROW((void)args.bool_flag("--configs", "as a bool"),
               std::logic_error);
  // A genuinely new flag is still fine afterwards.
  EXPECT_EQ(args.int_flag("--jobs", 4, "unrelated"), 4);
}

TEST(TrialRunner, TraceDirWritesOneChromeTracePerTrial) {
  std::vector<ExperimentSpec> specs = standard_sweep();
  for (ExperimentSpec& spec : specs) spec.trace_dir = ::testing::TempDir();
  TrialRunner runner({/*jobs=*/2});
  const std::vector<TrialRecord> records = runner.run(specs, nullptr);
  ASSERT_EQ(records.size(), 3u);
  // Body-less trials (0 and 1 run schedules, 2 is tracked) each write
  // exp_test_t<trial>.trace.json; verify they exist and are non-trivial.
  for (int trial = 0; trial < 3; ++trial) {
    const std::string path = ::testing::TempDir() + "exp_test_t" +
                             std::to_string(trial) + ".trace.json";
    std::ifstream json(path);
    ASSERT_TRUE(json.good()) << path;
    std::string first;
    std::getline(json, first);
    EXPECT_NE(first.find("\"traceEvents\""), std::string::npos) << path;
    std::remove(path.c_str());
  }
}

TEST(TrialRunner, TracedSweepMatchesUntracedResults) {
  // Attaching per-trial probes must not perturb any measured metric.
  std::vector<ExperimentSpec> untraced = standard_sweep();
  std::vector<ExperimentSpec> traced = standard_sweep();
  for (ExperimentSpec& spec : traced) spec.trace_dir = ::testing::TempDir();
  TrialRunner runner({/*jobs=*/1});
  const std::vector<TrialRecord> a = runner.run(untraced, nullptr);
  const std::vector<TrialRecord> b = runner.run(traced, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(records_equal(a[i], b[i])) << i;
  }
  for (int trial = 0; trial < 3; ++trial) {
    std::remove((::testing::TempDir() + "exp_test_t" +
                 std::to_string(trial) + ".trace.json")
                    .c_str());
  }
}

}  // namespace
}  // namespace actrack::exp
