// Fault-injection & resilience subsystem (src/fault).
//
// Four contracts under test:
//   1. Retry arithmetic — the exponential-backoff timeout schedule, the
//      attempt budget (RetryExhausted), and recovery after partial loss.
//   2. Determinism — fates are a pure function of the plan; an *empty*
//      plan attaches nothing, so a run configured with one is
//      bit-identical to a run with no plan at all; the same non-empty
//      plan twice yields bit-identical runs.
//   3. Resilience — faults change timing and traffic, never protocol
//      state: duplicate delivery is idempotent, dropped messages are
//      recovered by retries and barrier notice sync, and the shadow
//      oracle + invariant auditor stay green under the mixed plan.
//   4. Repair — observed slowdown, capacity weights, and the repair
//      placement evacuating the degraded node.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "check/auditor.hpp"
#include "check/checker.hpp"
#include "check/oracle.hpp"
#include "fault/inject.hpp"
#include "fault/plan.hpp"
#include "fault/repair.hpp"
#include "net/network.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack {
namespace {

constexpr std::int32_t kThreads = 16;
constexpr NodeId kNodes = 4;

// ---------------------------------------------------------------------------
// Retry arithmetic
// ---------------------------------------------------------------------------

TEST(FaultRetryPolicy, TimeoutScheduleDoublesToTheCap) {
  const RetryPolicy policy;  // 1500us doubling, capped at 24000us
  EXPECT_EQ(policy.timeout_for(1), 1500);
  EXPECT_EQ(policy.timeout_for(2), 3000);
  EXPECT_EQ(policy.timeout_for(3), 6000);
  EXPECT_EQ(policy.timeout_for(4), 12000);
  EXPECT_EQ(policy.timeout_for(5), 24000);
  EXPECT_EQ(policy.timeout_for(6), 24000);
  EXPECT_EQ(policy.timeout_for(8), 24000);
}

TEST(FaultRetryPolicy, CustomScheduleRespectsCap) {
  RetryPolicy policy;
  policy.timeout_us = 100;
  policy.timeout_cap_us = 350;
  EXPECT_EQ(policy.timeout_for(1), 100);
  EXPECT_EQ(policy.timeout_for(2), 200);
  EXPECT_EQ(policy.timeout_for(3), 350);  // 400 clamped
  EXPECT_EQ(policy.timeout_for(4), 350);
}

TEST(FaultRetry, ExchangeThrowsRetryExhaustedOnTotalLoss) {
  NetworkModel net(2, CostModel{});
  fault::FaultPlan plan;
  plan.drop_probability = 1.0;
  fault::FaultInjector injector(plan, 2);
  net.set_fault_hook(&injector);

  const RetryPolicy retry;
  try {
    (void)net.exchange(0, 1, 4096, PayloadKind::kFullPage, retry);
    FAIL() << "exchange on a fully lossy link must exhaust its budget";
  } catch (const RetryExhausted& e) {
    EXPECT_EQ(std::string(e.what()),
              "retry budget exhausted after 8 attempts (0 -> 1)");
  }
  // Every attempt sent one request that was dropped; the last timeout
  // throws instead of retransmitting.
  EXPECT_EQ(injector.stats().messages_seen, retry.max_attempts);
  EXPECT_EQ(injector.stats().drops, retry.max_attempts);
  EXPECT_EQ(injector.stats().retransmits, retry.max_attempts - 1);
}

TEST(FaultRetry, SendReliableThrowsRetryExhaustedOnTotalLoss) {
  NetworkModel net(2, CostModel{});
  fault::FaultPlan plan;
  plan.drop_probability = 1.0;
  fault::FaultInjector injector(plan, 2);
  net.set_fault_hook(&injector);

  EXPECT_THROW(
      (void)net.send_reliable(1, 0, 0, PayloadKind::kControl, RetryPolicy{}),
      RetryExhausted);
  EXPECT_EQ(injector.stats().retransmits, RetryPolicy{}.max_attempts - 1);
}

/// Test-only hook with a scripted fate queue: the first `drop_first`
/// messages are lost, everything after is delivered clean.
class DropFirstHook final : public NetFaultHook {
 public:
  explicit DropFirstHook(std::int32_t drop_first) : remaining_(drop_first) {}

  MessageFate on_message(NodeId, NodeId, ByteCount, PayloadKind) override {
    MessageFate fate;
    if (remaining_ > 0) {
      --remaining_;
      fate.dropped = true;
    }
    return fate;
  }
  void on_retry(NodeId, NodeId, std::int32_t) override { ++retries_; }

  [[nodiscard]] std::int32_t retries() const noexcept { return retries_; }

 private:
  std::int32_t remaining_;
  std::int32_t retries_ = 0;
};

TEST(FaultRetry, ExchangeRecoversAfterPartialLossAndChargesTimeouts) {
  NetworkModel net(2, CostModel{});
  DropFirstHook hook(/*drop_first=*/3);
  net.set_fault_hook(&hook);

  const RetryPolicy retry;
  const ExchangeResult result =
      net.exchange(0, 1, 1024, PayloadKind::kDiff, retry);
  // Attempts 1-3 lose their request and wait 1500, 3000, 6000us; attempt
  // 4 completes the round trip.
  EXPECT_EQ(result.attempts, 4);
  EXPECT_EQ(hook.retries(), 3);
  const SimTime timeouts =
      retry.timeout_for(1) + retry.timeout_for(2) + retry.timeout_for(3);
  const SimTime round_trip = net.cost().transfer_us(0) +
                             net.cost().transfer_us(1024);
  EXPECT_EQ(result.latency_us, timeouts + round_trip);
  // 4 requests + 1 reply crossed the wire, dropped copies included.
  EXPECT_EQ(net.totals().messages, 5);
}

TEST(FaultRetry, SendReliableRecoversAfterPartialLoss) {
  NetworkModel net(2, CostModel{});
  DropFirstHook hook(/*drop_first=*/2);
  net.set_fault_hook(&hook);

  std::int32_t attempts = 0;
  const RetryPolicy retry;
  const SimTime latency = net.send_reliable(0, 1, 256, PayloadKind::kStack,
                                            retry, &attempts);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(latency, retry.timeout_for(1) + retry.timeout_for(2) +
                         net.cost().transfer_us(256));
  EXPECT_EQ(net.totals().messages, 3);
}

// ---------------------------------------------------------------------------
// Plans: presets, classification, serialisation
// ---------------------------------------------------------------------------

TEST(FaultPlan, DefaultPlanIsEmpty) {
  EXPECT_TRUE(fault::FaultPlan{}.empty());
}

TEST(FaultPlan, AllHealthySlowdownsAreStillEmpty) {
  // A plan that names every node healthy injects nothing and must never
  // cause an injector to be attached.
  fault::FaultPlan plan;
  plan.seed = 42;  // a non-default seed alone injects nothing either
  plan.node_slowdown.assign(static_cast<std::size_t>(kNodes), 1.0);
  EXPECT_TRUE(plan.empty());
  plan.node_slowdown.back() = 1.5;
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, EveryPresetClassIsNonEmpty) {
  for (const fault::FaultClass cls : fault::all_fault_classes()) {
    SCOPED_TRACE(fault::to_string(cls));
    EXPECT_FALSE(fault::make_plan(cls, kNodes).empty());
  }
}

TEST(FaultPlan, ClassNamesRoundTrip) {
  for (const fault::FaultClass cls : fault::all_fault_classes()) {
    const auto parsed = fault::fault_class_from_string(fault::to_string(cls));
    ASSERT_TRUE(parsed.has_value()) << fault::to_string(cls);
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(fault::fault_class_from_string("hurricane").has_value());
  EXPECT_FALSE(fault::fault_class_from_string("").has_value());
}

void expect_plans_equal(const fault::FaultPlan& a, const fault::FaultPlan& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.drop_probability, b.drop_probability);
  EXPECT_EQ(a.duplicate_probability, b.duplicate_probability);
  EXPECT_EQ(a.spike_probability, b.spike_probability);
  EXPECT_EQ(a.spike_us, b.spike_us);
  EXPECT_EQ(a.stall_probability, b.stall_probability);
  EXPECT_EQ(a.stall_us, b.stall_us);
  EXPECT_EQ(a.node_slowdown, b.node_slowdown);
}

TEST(FaultPlan, TextRoundTripPreservesEveryPreset) {
  for (const fault::FaultClass cls : fault::all_fault_classes()) {
    SCOPED_TRACE(fault::to_string(cls));
    const fault::FaultPlan plan = fault::make_plan(cls, kNodes, 0xBEEF);
    expect_plans_equal(plan, fault::plan_from_text(fault::to_text(plan)));
  }
}

TEST(FaultPlan, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "fault_plan.txt";
  const fault::FaultPlan plan =
      fault::make_plan(fault::FaultClass::kMixed, kNodes, 7);
  fault::save_plan(plan, path);
  expect_plans_equal(plan, fault::load_plan(path));
}

TEST(FaultPlan, MalformedTextThrows) {
  EXPECT_THROW((void)fault::plan_from_text("no equals sign"),
               std::runtime_error);
  EXPECT_THROW((void)fault::plan_from_text("unknown_key=1\n"),
               std::runtime_error);
  EXPECT_THROW((void)fault::plan_from_text("drop_probability=lossy\n"),
               std::runtime_error);
  EXPECT_THROW((void)fault::plan_from_text("spike_us=12q\n"),
               std::runtime_error);
  EXPECT_THROW((void)fault::load_plan("/nonexistent/fault_plan.txt"),
               std::runtime_error);
}

TEST(FaultPlan, CommentsAndBlankLinesAreIgnored) {
  const fault::FaultPlan plan = fault::plan_from_text(
      "# a CI artifact\n\ndrop_probability=0.25\nnode_slowdown=1,2.5\n");
  EXPECT_EQ(plan.drop_probability, 0.25);
  ASSERT_EQ(plan.node_slowdown.size(), 2u);
  EXPECT_EQ(plan.node_slowdown[1], 2.5);
}

// ---------------------------------------------------------------------------
// Injector determinism
// ---------------------------------------------------------------------------

TEST(FaultInjector, SamePlanYieldsTheSameFateSequence) {
  const fault::FaultPlan plan =
      fault::make_plan(fault::FaultClass::kMixed, kNodes);
  fault::FaultInjector a(plan, kNodes);
  fault::FaultInjector b(plan, kNodes);
  for (int i = 0; i < 512; ++i) {
    const MessageFate fa = a.on_message(0, 1, 128, PayloadKind::kControl);
    const MessageFate fb = b.on_message(0, 1, 128, PayloadKind::kControl);
    EXPECT_EQ(fa.dropped, fb.dropped) << "message " << i;
    EXPECT_EQ(fa.copies, fb.copies) << "message " << i;
    EXPECT_EQ(fa.extra_latency_us, fb.extra_latency_us) << "message " << i;
  }
  EXPECT_EQ(a.stats().drops, b.stats().drops);
  EXPECT_EQ(a.stats().duplicates, b.stats().duplicates);
  EXPECT_EQ(a.stats().spikes, b.stats().spikes);
}

TEST(FaultInjector, DifferentSeedReshufflesFates) {
  fault::FaultInjector a(fault::make_plan(fault::FaultClass::kMixed, kNodes,
                                          /*seed=*/1),
                         kNodes);
  fault::FaultInjector b(fault::make_plan(fault::FaultClass::kMixed, kNodes,
                                          /*seed=*/2),
                         kNodes);
  bool any_difference = false;
  for (int i = 0; i < 512; ++i) {
    const MessageFate fa = a.on_message(0, 1, 128, PayloadKind::kControl);
    const MessageFate fb = b.on_message(0, 1, 128, PayloadKind::kControl);
    any_difference = any_difference || fa.dropped != fb.dropped ||
                     fa.copies != fb.copies ||
                     fa.extra_latency_us != fb.extra_latency_us;
  }
  EXPECT_TRUE(any_difference);
}

// ---------------------------------------------------------------------------
// Full-run determinism and resilience
// ---------------------------------------------------------------------------

/// Everything a scripted run produces: per-step metrics plus the final
/// protocol and injector books.
struct RunResult {
  std::vector<IterationMetrics> steps;
  DsmStats dsm;
  NetCounters net;
  fault::FaultStats injected;  // zero when no injector was attached
};

/// Init, three measured iterations, migration to the reversed placement,
/// one more iteration, then the tracked iteration — the same script the
/// checker-determinism suite uses, under an optional fault plan.
RunResult scripted_run(const Workload& workload, const RuntimeConfig& config,
                       bool checked = false) {
  ClusterRuntime runtime(workload,
                         Placement::stretch(workload.num_threads(), kNodes),
                         config);
  check::ShadowOracle oracle(&runtime.dsm());
  check::InvariantAuditor auditor(&runtime.dsm());
  check::CheckHookChain chain;
  chain.add(&oracle);
  chain.add(&auditor);
  if (checked) runtime.dsm().set_check_hook(&chain);

  RunResult result;
  result.steps.push_back(runtime.run_init());
  result.steps.push_back(runtime.run_iteration());
  result.steps.push_back(runtime.run_iteration());
  result.steps.push_back(runtime.run_iteration());
  std::vector<NodeId> reversed = runtime.placement().node_of_thread();
  for (NodeId& node : reversed) node = kNodes - 1 - node;
  result.steps.push_back(
      runtime.migrate_to(Placement{std::move(reversed), kNodes}));
  result.steps.push_back(runtime.run_iteration());
  result.steps.push_back(runtime.run_tracked_iteration().metrics);
  result.dsm = runtime.dsm().stats();
  result.net = runtime.network().totals();
  if (runtime.fault_injector() != nullptr) {
    result.injected = runtime.fault_injector()->stats();
  }
  if (checked) {
    EXPECT_GT(oracle.checks_performed(), 0) << workload.name();
    EXPECT_GT(auditor.barrier_audits(), 0) << workload.name();
  }
  return result;
}

void expect_identical_steps(const std::vector<IterationMetrics>& a,
                            const std::vector<IterationMetrics>& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(label + " step " + std::to_string(i));
    EXPECT_EQ(a[i].elapsed_us, b[i].elapsed_us);
    EXPECT_EQ(a[i].remote_misses, b[i].remote_misses);
    EXPECT_EQ(a[i].read_faults, b[i].read_faults);
    EXPECT_EQ(a[i].write_faults, b[i].write_faults);
    EXPECT_EQ(a[i].messages, b[i].messages);
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes);
    EXPECT_EQ(a[i].diff_bytes, b[i].diff_bytes);
    EXPECT_EQ(a[i].control_bytes, b[i].control_bytes);
    EXPECT_EQ(a[i].stack_bytes, b[i].stack_bytes);
    EXPECT_EQ(a[i].gc_runs, b[i].gc_runs);
    EXPECT_EQ(a[i].link_frames, b[i].link_frames);
    EXPECT_EQ(a[i].link_retransmits, b[i].link_retransmits);
    EXPECT_EQ(a[i].link_acks, b[i].link_acks);
    EXPECT_EQ(a[i].link_bytes, b[i].link_bytes);
    EXPECT_EQ(a[i].link_stall_us, b[i].link_stall_us);
    EXPECT_DOUBLE_EQ(a[i].load_imbalance, b[i].load_imbalance);
  }
}

/// Protocol *state* counters must not depend on message fates: faults
/// cost time and traffic, never correctness.  fetch_retries and
/// notices_recovered are recovery-effort counters, compared separately.
void expect_same_protocol_state(const DsmStats& faulted,
                                const DsmStats& clean) {
  EXPECT_EQ(faulted.read_faults, clean.read_faults);
  EXPECT_EQ(faulted.write_faults, clean.write_faults);
  EXPECT_EQ(faulted.remote_misses, clean.remote_misses);
  EXPECT_EQ(faulted.diff_fetches, clean.diff_fetches);
  EXPECT_EQ(faulted.full_page_fetches, clean.full_page_fetches);
  EXPECT_EQ(faulted.diffs_created, clean.diffs_created);
  EXPECT_EQ(faulted.invalidations, clean.invalidations);
  EXPECT_EQ(faulted.gc_runs, clean.gc_runs);
  EXPECT_EQ(faulted.gc_invalidations, clean.gc_invalidations);
  EXPECT_EQ(faulted.ownership_transfers, clean.ownership_transfers);
  EXPECT_EQ(faulted.delta_stalls, clean.delta_stalls);
}

TEST(FaultEmptyPlan, AttachesNoInjector) {
  const std::unique_ptr<Workload> workload = make_workload("SOR", kThreads);
  RuntimeConfig config;
  config.fault.node_slowdown.assign(static_cast<std::size_t>(kNodes), 1.0);
  ClusterRuntime runtime(*workload, Placement::stretch(kThreads, kNodes),
                         config);
  EXPECT_EQ(runtime.fault_injector(), nullptr);
  EXPECT_FALSE(runtime.network().fault_hook_attached());
}

class FaultDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultDeterminismTest, EmptyPlanRunIsBitIdenticalToNoPlanRun) {
  const std::unique_ptr<Workload> workload =
      make_workload(GetParam(), kThreads);
  const RuntimeConfig bare;  // no plan at all
  RuntimeConfig configured;  // an explicitly healthy plan, odd seed
  configured.fault.seed = 0xD15EA5EULL;
  configured.fault.node_slowdown.assign(static_cast<std::size_t>(kNodes),
                                        1.0);
  ASSERT_TRUE(configured.fault.empty());
  expect_identical_steps(scripted_run(*workload, bare).steps,
                         scripted_run(*workload, configured).steps,
                         GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FaultDeterminismTest,
    ::testing::ValuesIn(all_workload_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(FaultedRunDeterminism, SamePlanTwiceIsBitIdentical) {
  const std::unique_ptr<Workload> workload = make_workload("SOR", kThreads);
  RuntimeConfig config;
  config.fault = fault::make_plan(fault::FaultClass::kMixed, kNodes);
  const RunResult first = scripted_run(*workload, config);
  const RunResult second = scripted_run(*workload, config);
  expect_identical_steps(first.steps, second.steps, "mixed twice");
  EXPECT_EQ(first.injected.drops, second.injected.drops);
  EXPECT_EQ(first.injected.duplicates, second.injected.duplicates);
  EXPECT_EQ(first.injected.spikes, second.injected.spikes);
  EXPECT_EQ(first.injected.stalls, second.injected.stalls);
  EXPECT_EQ(first.injected.retransmits, second.injected.retransmits);
  EXPECT_GT(first.injected.messages_seen, 0);
}

TEST(FaultResilience, DuplicateDeliveryIsIdempotent) {
  const std::unique_ptr<Workload> workload = make_workload("Water", kThreads);
  const RunResult clean = scripted_run(*workload, RuntimeConfig{});
  RuntimeConfig config;
  config.fault = fault::make_plan(fault::FaultClass::kDuplicate, kNodes);
  const RunResult faulted = scripted_run(*workload, config);

  EXPECT_GT(faulted.injected.duplicates, 0);
  expect_same_protocol_state(faulted.dsm, clean.dsm);
  // Nothing was lost, so nothing needed retrying...
  EXPECT_EQ(faulted.dsm.fetch_retries, 0);
  EXPECT_EQ(faulted.injected.retransmits, 0);
  // ...but every duplicate crossed the wire and was accounted.
  EXPECT_GT(faulted.net.messages, clean.net.messages);
  EXPECT_GT(faulted.net.total_bytes, clean.net.total_bytes);
}

TEST(FaultResilience, DroppedMessagesAreRecoveredByRetries) {
  // SOR is barrier-structured, so its data-movement counts are
  // independent of message timing and must match the clean run exactly.
  // (Lock-based apps are excluded on purpose: retry timeouts shift lock
  // acquisition order, which legitimately reshapes diff traffic.  Raw
  // trap counts can still drift by a few — slower fetches change which
  // threads overlap and trap on pages whose fetch is already in flight —
  // so the comparison pins what actually moved, not who trapped.)
  const std::unique_ptr<Workload> workload = make_workload("SOR", kThreads);
  const RunResult clean = scripted_run(*workload, RuntimeConfig{});
  RuntimeConfig config;
  config.fault = fault::make_plan(fault::FaultClass::kDrop, kNodes);
  const RunResult faulted = scripted_run(*workload, config);

  EXPECT_GT(faulted.injected.drops, 0);
  EXPECT_GT(faulted.dsm.fetch_retries, 0);
  EXPECT_GT(faulted.injected.retransmits, 0);
  // Recovery costs time and retransmitted traffic, never data movement.
  EXPECT_EQ(faulted.dsm.remote_misses, clean.dsm.remote_misses);
  EXPECT_EQ(faulted.dsm.diff_fetches, clean.dsm.diff_fetches);
  EXPECT_EQ(faulted.dsm.full_page_fetches, clean.dsm.full_page_fetches);
  EXPECT_EQ(faulted.dsm.diffs_created, clean.dsm.diffs_created);
  EXPECT_EQ(faulted.dsm.invalidations, clean.dsm.invalidations);
  EXPECT_EQ(faulted.dsm.gc_runs, clean.dsm.gc_runs);
  EXPECT_GT(faulted.net.messages, clean.net.messages);
  SimTime clean_us = 0;
  SimTime faulted_us = 0;
  for (const IterationMetrics& m : clean.steps) clean_us += m.elapsed_us;
  for (const IterationMetrics& m : faulted.steps) faulted_us += m.elapsed_us;
  EXPECT_GT(faulted_us, clean_us);
}

TEST(FaultResilience, DropsRecoverUnderTheSingleWriterProtocol) {
  const std::unique_ptr<Workload> workload = make_workload("SOR", kThreads);
  RuntimeConfig clean_config;
  clean_config.dsm.model = ConsistencyModel::kSequentialSingleWriter;
  const RunResult clean = scripted_run(*workload, clean_config);
  RuntimeConfig config = clean_config;
  config.fault = fault::make_plan(fault::FaultClass::kDrop, kNodes);
  const RunResult faulted = scripted_run(*workload, config);

  EXPECT_GT(faulted.injected.drops, 0);
  expect_same_protocol_state(faulted.dsm, clean.dsm);
}

TEST(FaultResilience, LostWriteNoticesAreResentAtTheBarrier) {
  const std::unique_ptr<Workload> workload = make_workload("Water", kThreads);
  RuntimeConfig config;
  config.fault.drop_probability = 0.08;  // lossy enough to hit notice sync
  const RunResult faulted = scripted_run(*workload, config);
  EXPECT_GT(faulted.dsm.notices_recovered, 0);
}

TEST(FaultResilience, CheckerStaysCleanUnderTheMixedPlan) {
  // The shadow oracle and invariant auditor must not report violations
  // when every fault class fires at once: faults never corrupt protocol
  // state, and the checker itself never perturbs fault arrivals.
  const std::unique_ptr<Workload> workload = make_workload("Water", kThreads);
  RuntimeConfig config;
  config.fault = fault::make_plan(fault::FaultClass::kMixed, kNodes);
  const RunResult unchecked = scripted_run(*workload, config, false);
  const RunResult checked = scripted_run(*workload, config, true);
  expect_identical_steps(unchecked.steps, checked.steps, "mixed+checked");
}

// ---------------------------------------------------------------------------
// Fault x link composition: fates apply per frame, ARQ recovers them
// ---------------------------------------------------------------------------

TEST(FaultLinkComposition, EmptyPlanWithLinkIsBitIdenticalToLinkOnly) {
  const std::unique_ptr<Workload> workload = make_workload("SOR", kThreads);
  RuntimeConfig link_only;
  link_only.cost.link.enabled = true;
  RuntimeConfig with_empty_plan = link_only;
  with_empty_plan.fault.seed = 0xD15EA5EULL;
  with_empty_plan.fault.node_slowdown.assign(static_cast<std::size_t>(kNodes),
                                             1.0);
  ASSERT_TRUE(with_empty_plan.fault.empty());
  expect_identical_steps(scripted_run(*workload, link_only).steps,
                         scripted_run(*workload, with_empty_plan).steps,
                         "link-only vs link+empty-plan");
}

TEST(FaultLinkComposition, PerFrameDropsAreAbsorbedByArqNotMessageRetries) {
  // With the link enabled, the fault plan's drops land on individual
  // frames, and the selective-repeat timers recover every one of them:
  // protocol state matches the clean linked run, frame retransmits are
  // booked, and the message-level retry machinery never has to fire
  // (a message is only lost after 16 consecutive frame drops).
  const std::unique_ptr<Workload> workload = make_workload("SOR", kThreads);
  RuntimeConfig clean_config;
  clean_config.cost.link.enabled = true;
  const RunResult clean = scripted_run(*workload, clean_config);
  RuntimeConfig config = clean_config;
  config.fault = fault::make_plan(fault::FaultClass::kDrop, kNodes);
  const RunResult faulted = scripted_run(*workload, config);

  EXPECT_GT(faulted.injected.drops, 0);
  EXPECT_GT(faulted.net.frame_retransmits, 0);
  // Data movement is pinned exactly; raw trap counts are not compared
  // (as in DroppedMessagesAreRecoveredByRetries, slower fetches change
  // which threads trap on pages whose fetch is already in flight).
  EXPECT_EQ(faulted.dsm.remote_misses, clean.dsm.remote_misses);
  EXPECT_EQ(faulted.dsm.diff_fetches, clean.dsm.diff_fetches);
  EXPECT_EQ(faulted.dsm.full_page_fetches, clean.dsm.full_page_fetches);
  EXPECT_EQ(faulted.dsm.diffs_created, clean.dsm.diffs_created);
  EXPECT_EQ(faulted.dsm.invalidations, clean.dsm.invalidations);
  EXPECT_EQ(faulted.dsm.gc_runs, clean.dsm.gc_runs);
  // Exactly-once delivery at the message layer: no message was ever
  // lost, so the retry machinery stayed cold and only the frame books
  // (and the clock) grew.
  EXPECT_EQ(faulted.dsm.fetch_retries, 0);
  EXPECT_EQ(faulted.dsm.notices_recovered, 0);
  EXPECT_EQ(faulted.injected.retransmits, 0);
  EXPECT_GT(faulted.net.link_bytes, clean.net.link_bytes);
  SimTime clean_us = 0;
  SimTime faulted_us = 0;
  for (const IterationMetrics& m : clean.steps) clean_us += m.elapsed_us;
  for (const IterationMetrics& m : faulted.steps) faulted_us += m.elapsed_us;
  EXPECT_GT(faulted_us, clean_us);
}

TEST(FaultLinkComposition, MixedPlanWithReorderingLinkTwiceIsBitIdentical) {
  // The +fault+link checker-grid cell, as a direct pin: mixed fates on
  // a reordering link are a pure function of (plan, link seed).
  const std::unique_ptr<Workload> workload = make_workload("Water", kThreads);
  RuntimeConfig config;
  config.cost.link.enabled = true;
  config.cost.link.reorder_probability = 0.2;
  config.fault = fault::make_plan(fault::FaultClass::kMixed, kNodes);
  const RunResult first = scripted_run(*workload, config);
  const RunResult second = scripted_run(*workload, config);
  expect_identical_steps(first.steps, second.steps, "mixed+link twice");
  EXPECT_EQ(first.net.frames, second.net.frames);
  EXPECT_EQ(first.net.frame_retransmits, second.net.frame_retransmits);
  EXPECT_EQ(first.net.acks, second.net.acks);
  EXPECT_EQ(first.net.link_bytes, second.net.link_bytes);
  EXPECT_EQ(first.net.link_stall_us, second.net.link_stall_us);
  EXPECT_EQ(first.injected.drops, second.injected.drops);
  EXPECT_GT(first.net.frames, 0);
}

TEST(FaultLinkComposition, CheckerStaysCleanUnderTheMixedPlanWithLink) {
  const std::unique_ptr<Workload> workload = make_workload("Water", kThreads);
  RuntimeConfig config;
  config.cost.link.enabled = true;
  config.cost.link.reorder_probability = 0.2;
  config.fault = fault::make_plan(fault::FaultClass::kMixed, kNodes);
  const RunResult unchecked = scripted_run(*workload, config, false);
  const RunResult checked = scripted_run(*workload, config, true);
  expect_identical_steps(unchecked.steps, checked.steps,
                         "mixed+link+checked");
}

// ---------------------------------------------------------------------------
// Migration-as-repair
// ---------------------------------------------------------------------------

TEST(FaultRepair, ObservedSlowdownMatchesTheInjectedFactor) {
  fault::FaultInjector injector(
      fault::make_plan(fault::FaultClass::kSlowNode, kNodes), kNodes);
  EXPECT_EQ(injector.observed_slowdown(kNodes - 1), 1.0)
      << "no compute history yet";
  for (NodeId node = 0; node < kNodes; ++node) {
    // The penalty for the slow node is exactly (4.0 - 1.0) * 1000us.
    const SimTime penalty = injector.compute_penalty(node, 1000);
    EXPECT_EQ(penalty, node == kNodes - 1 ? 3000 : 0);
  }
  EXPECT_DOUBLE_EQ(injector.observed_slowdown(0), 1.0);
  EXPECT_DOUBLE_EQ(injector.observed_slowdown(kNodes - 1), 4.0);
  const std::vector<double> all = injector.observed_slowdowns();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kNodes));
  EXPECT_DOUBLE_EQ(all.back(), 4.0);
}

TEST(FaultRepair, CapacityWeightsAreInverseObservedSlowdown) {
  fault::FaultInjector injector(
      fault::make_plan(fault::FaultClass::kSlowNode, kNodes), kNodes);
  for (NodeId node = 0; node < kNodes; ++node) {
    (void)injector.compute_penalty(node, 1000);
  }
  const std::vector<double> weights = fault::capacity_weights(injector);
  ASSERT_EQ(weights.size(), static_cast<std::size_t>(kNodes));
  for (NodeId node = 0; node + 1 < kNodes; ++node) {
    EXPECT_DOUBLE_EQ(weights[static_cast<std::size_t>(node)], 1.0);
  }
  EXPECT_DOUBLE_EQ(weights.back(), 0.25);
}

TEST(FaultRepair, RepairPlacementEvacuatesTheSlowNode) {
  fault::FaultInjector injector(
      fault::make_plan(fault::FaultClass::kSlowNode, kNodes), kNodes);
  for (NodeId node = 0; node < kNodes; ++node) {
    (void)injector.compute_penalty(node, 1000);
  }
  // Uniform correlations: every balanced cut costs the same, so only
  // the capacity weights decide the node populations.
  CorrelationMatrix matrix(kThreads);
  for (ThreadId a = 0; a < kThreads; ++a) {
    for (ThreadId b = a + 1; b < kThreads; ++b) {
      matrix.set(a, b, 1);
    }
  }
  const Placement repaired = fault::repair_placement(matrix, injector);
  ASSERT_EQ(repaired.num_threads(), kThreads);
  std::array<std::int32_t, static_cast<std::size_t>(kNodes)> population{};
  for (const NodeId node : repaired.node_of_thread()) {
    population[static_cast<std::size_t>(node)] += 1;
  }
  const std::int32_t slow = population.back();
  EXPECT_LT(slow, kThreads / kNodes) << "slow node must lose threads";
  for (NodeId node = 0; node + 1 < kNodes; ++node) {
    EXPECT_GT(population[static_cast<std::size_t>(node)], slow);
  }
}

}  // namespace
}  // namespace actrack
