// Randomised ("fuzz") traces through the full pipeline: arbitrary but
// valid access patterns, phases, locks and placements must never break
// protocol invariants, in either consistency model, with and without
// GC, hiding, tracking and migration.
#include <gtest/gtest.h>

#include <memory>

#include <algorithm>

#include "apps/synthetic.hpp"
#include "apps/trace_workload.hpp"
#include "check/workload_gen.hpp"
#include "common/rng.hpp"
#include "placement/heuristics.hpp"
#include "runtime/cluster_runtime.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

// The generator lives in src/check (shared with `actrack check`), so a
// seed that fails here can be replayed under the checker and vice versa.
using check::random_trace;

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, RandomTracesNeverBreakInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) *
              std::uint64_t{2862933555777941757} +
          std::uint64_t{3037000493});
  const std::int32_t threads = static_cast<std::int32_t>(4 + rng.uniform(9));
  const PageId pages = static_cast<PageId>(8 + rng.uniform(25));
  const NodeId nodes = static_cast<NodeId>(2 + rng.uniform(2));
  if (threads < nodes * 2) GTEST_SKIP();

  TraceWorkload workload(random_trace(rng, threads, pages, 3));

  RuntimeConfig config;
  if (rng.uniform(2) == 0) {
    config.dsm.model = ConsistencyModel::kSequentialSingleWriter;
    config.dsm.delta_interval_us = rng.uniform(2) == 0 ? 1000 : 0;
  } else if (rng.uniform(2) == 0) {
    config.dsm.causality = CausalityMode::kVectorClock;
  }
  if (rng.uniform(3) == 0) config.dsm.gc_threshold_bytes = 512;
  config.sched.latency_hiding = rng.uniform(4) != 0;

  const Placement initial = random_placement(rng, threads, nodes, 2);
  ClusterRuntime runtime(workload, initial, config);
  runtime.run_init();

  for (int step = 0; step < 4; ++step) {
    if (step == 2) {
      // Mid-run migration to another random placement.
      const Placement target = random_placement(rng, threads, nodes, 2);
      runtime.migrate_to(target);
      continue;
    }
    const IterationMetrics m = (step == 1)
                                   ? runtime.run_tracked_iteration().metrics
                                   : runtime.run_iteration();
    EXPECT_GE(m.elapsed_us, 0);
    EXPECT_GE(m.remote_misses, 0);
    EXPECT_LE(m.diff_bytes, m.total_bytes);
    EXPECT_GE(m.load_imbalance, 1.0 - 1e-9);
  }

  // Tracking over a random trace is still exact.
  const IterationTrace reference =
      workload.iteration(runtime.next_iteration());
  const auto oracle = pages_touched_per_thread(reference, pages);
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  for (std::size_t t = 0; t < oracle.size(); ++t) {
    EXPECT_EQ(tracked.tracking.access_bitmaps[t], oracle[t])
        << "seed " << GetParam() << " thread " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(0, 24));

TEST(LoadImbalanceMetric, BalancedRunIsNearOne) {
  Rng rng(5);
  TraceWorkload workload(random_trace(rng, 8, 16, 2));
  ClusterRuntime runtime(workload, Placement::stretch(8, 2));
  runtime.run_init();
  const IterationMetrics m = runtime.run_iteration();
  EXPECT_GE(m.load_imbalance, 1.0);
  EXPECT_LT(m.load_imbalance, 3.0);
}

TEST(LoadImbalanceMetric, LopsidedPlacementScoresWorse) {
  // Equal per-thread compute, no sharing: a 7/1 split leaves node 1
  // idle most of the iteration while a 4/4 split is perfectly even.
  PrivateWorkload workload(8, 2);

  ClusterRuntime balanced(workload, Placement::stretch(8, 2));
  balanced.run_init();
  const double fair = balanced.run_iteration().load_imbalance;

  ClusterRuntime lopsided(workload, Placement({0, 0, 0, 0, 0, 0, 0, 1}, 2));
  lopsided.run_init();
  const double unfair = lopsided.run_iteration().load_imbalance;

  EXPECT_NEAR(fair, 1.0, 0.05);
  EXPECT_GT(unfair, 1.5);
}

}  // namespace
}  // namespace actrack
