#include "placement/heuristics.hpp"

#include <gtest/gtest.h>

namespace actrack {
namespace {

/// Ring correlation: c(t, t±1 mod n) = w.
CorrelationMatrix ring_matrix(std::int32_t n, std::int64_t w = 10) {
  CorrelationMatrix m(n);
  for (ThreadId t = 0; t < n; ++t) {
    m.set(t, (t + 1) % n, w);
  }
  return m;
}

/// Block correlation: threads in the same group of `g` share weight w.
CorrelationMatrix block_matrix(std::int32_t n, std::int32_t g,
                               std::int64_t w = 10) {
  CorrelationMatrix m(n);
  for (ThreadId i = 0; i < n; ++i) {
    for (ThreadId j = i + 1; j < n; ++j) {
      if (i / g == j / g) m.set(i, j, w);
    }
  }
  return m;
}

TEST(RandomPlacementTest, RespectsMinimumPerNode) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Placement p = random_placement(rng, 64, 8, 2);
    for (NodeId n = 0; n < 8; ++n) EXPECT_GE(p.threads_on(n), 2);
  }
}

TEST(RandomPlacementTest, ProducesUnequalCounts) {
  // Table 2: "Equal numbers of threads were not necessarily present on
  // each node" — across many samples some placement must be unbalanced.
  Rng rng(2);
  bool saw_unbalanced = false;
  for (int trial = 0; trial < 20 && !saw_unbalanced; ++trial) {
    const Placement p = random_placement(rng, 64, 8, 2);
    for (NodeId n = 0; n < 8; ++n) {
      if (p.threads_on(n) != 8) saw_unbalanced = true;
    }
  }
  EXPECT_TRUE(saw_unbalanced);
}

TEST(RandomPlacementTest, RejectsInfeasibleMinimum) {
  Rng rng(3);
  EXPECT_THROW((void)random_placement(rng, 15, 8, 2), std::logic_error);
}

TEST(BalancedRandomTest, AlwaysBalanced) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Placement p = balanced_random_placement(rng, 64, 8);
    for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(p.threads_on(n), 8);
  }
}

TEST(BalancedRandomTest, HandlesRemainder) {
  Rng rng(5);
  const Placement p = balanced_random_placement(rng, 10, 4);
  std::int32_t total = 0;
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_GE(p.threads_on(n), 2);
    EXPECT_LE(p.threads_on(n), 3);
    total += p.threads_on(n);
  }
  EXPECT_EQ(total, 10);
}

TEST(MinCostTest, SolvesRingExactly) {
  // On a ring, contiguous chunks are optimal: cut = num_nodes * w.
  const CorrelationMatrix m = ring_matrix(16, 10);
  const Placement p = min_cost_placement(m, 4);
  EXPECT_EQ(m.cut_cost(p.node_of_thread()), 4 * 10);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(p.threads_on(n), 4);
}

TEST(MinCostTest, SolvesBlockStructureExactly) {
  // Groups of 4 with heavy internal sharing; 4 nodes of capacity 4:
  // perfect assignment has zero cut.
  const CorrelationMatrix m = block_matrix(16, 4, 10);
  const Placement p = min_cost_placement(m, 4);
  EXPECT_EQ(m.cut_cost(p.node_of_thread()), 0);
}

TEST(MinCostTest, BalancedEvenWhenUniform) {
  // All-to-all sharing: every balanced mapping is equivalent; result
  // must still be balanced.
  CorrelationMatrix m(12);
  for (ThreadId i = 0; i < 12; ++i) {
    for (ThreadId j = i + 1; j < 12; ++j) m.set(i, j, 5);
  }
  const Placement p = min_cost_placement(m, 3);
  for (NodeId n = 0; n < 3; ++n) EXPECT_EQ(p.threads_on(n), 4);
}

TEST(MinCostTest, MatchesOptimalOnSmallInstances) {
  // §5.1's claim: min-cost within 1 % of optimal.  On these sizes we
  // can verify exact equality against branch-and-bound.
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    Rng rng(seed);
    CorrelationMatrix m(8);
    for (ThreadId i = 0; i < 8; ++i) {
      for (ThreadId j = i + 1; j < 8; ++j) {
        m.set(i, j, rng.uniform(20));
      }
    }
    const Placement heuristic = min_cost_placement(m, 2);
    const auto optimal = optimal_placement(m, 2);
    ASSERT_TRUE(optimal.has_value());
    const std::int64_t best = m.cut_cost(optimal->node_of_thread());
    const std::int64_t heur = m.cut_cost(heuristic.node_of_thread());
    // §5.1: within 1 % of optimal (and never below it).
    EXPECT_GE(heur, best) << "seed " << seed;
    EXPECT_LE(heur, best + best / 100 + 1) << "seed " << seed;
  }
}

TEST(OptimalTest, FindsZeroCutWhenOneExists) {
  const CorrelationMatrix m = block_matrix(8, 4, 7);
  const auto p = optimal_placement(m, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(m.cut_cost(p->node_of_thread()), 0);
}

TEST(OptimalTest, BalancedResult) {
  const CorrelationMatrix m = ring_matrix(10);
  const auto p = optimal_placement(m, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->threads_on(0), 5);
  EXPECT_EQ(p->threads_on(1), 5);
}

TEST(OptimalTest, GivesUpGracefullyOnHugeInstances) {
  CorrelationMatrix m(40);
  Rng rng(5);
  for (ThreadId i = 0; i < 40; ++i) {
    for (ThreadId j = i + 1; j < 40; ++j) m.set(i, j, rng.uniform(100));
  }
  const auto p = optimal_placement(m, 8, /*node_budget=*/1000);
  EXPECT_FALSE(p.has_value());
}

TEST(RefineTest, NeverWorsensCut) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    CorrelationMatrix m(16);
    for (ThreadId i = 0; i < 16; ++i) {
      for (ThreadId j = i + 1; j < 16; ++j) m.set(i, j, rng.uniform(30));
    }
    const Placement start = balanced_random_placement(rng, 16, 4);
    const Placement refined = refine_by_swaps(m, start);
    EXPECT_LE(m.cut_cost(refined.node_of_thread()),
              m.cut_cost(start.node_of_thread()));
    for (NodeId n = 0; n < 4; ++n) {
      EXPECT_EQ(refined.threads_on(n), start.threads_on(n));
    }
  }
}

TEST(MinCostTest, DeterministicForFixedOptions) {
  const CorrelationMatrix m = ring_matrix(24);
  const Placement a = min_cost_placement(m, 4);
  const Placement b = min_cost_placement(m, 4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace actrack
