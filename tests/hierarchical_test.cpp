// Two-level (hierarchical) min-cost placement: quality against the flat
// dense pipeline at paper scale, exact balance, determinism, and the
// O(n·k) scaling path the dense pipeline cannot reach.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "apps/workload.hpp"
#include "common/rng.hpp"
#include "correlation/matrix.hpp"
#include "correlation/sparse.hpp"
#include "placement/heuristics.hpp"
#include "placement/hierarchical.hpp"
#include "placement/placement.hpp"
#include "runtime/adaptive.hpp"
#include "runtime/cluster_runtime.hpp"
#include "runtime/passive.hpp"

namespace actrack {
namespace {

constexpr std::int32_t kThreads = 64;
constexpr NodeId kNodes = 8;

std::vector<DynamicBitset> tracked_bitmaps(const std::string& app) {
  const std::unique_ptr<Workload> workload = make_workload(app, kThreads);
  ClusterRuntime runtime(*workload, Placement::stretch(kThreads, kNodes));
  runtime.run_init();
  return runtime.run_tracked_iteration().tracking.access_bitmaps;
}

/// Deterministic sparse sharing pattern at arbitrary scale: each thread
/// owns a few private pages and shares a band with its ring neighbour,
/// with thread ids permuted so placement has real work to do.
std::vector<DynamicBitset> permuted_ring_bitmaps(std::int32_t threads) {
  constexpr std::int32_t kPrivate = 4;
  constexpr std::int32_t kShared = 2;
  constexpr std::int32_t kStride = kPrivate + kShared;
  std::vector<ThreadId> order(static_cast<std::size_t>(threads));
  for (std::int32_t t = 0; t < threads; ++t) {
    order[static_cast<std::size_t>(t)] = t;
  }
  Rng rng(0x5CA1Eu ^ static_cast<std::uint64_t>(threads));
  rng.shuffle(order);

  std::vector<DynamicBitset> maps(
      static_cast<std::size_t>(threads),
      DynamicBitset(static_cast<std::int64_t>(threads) * kStride));
  for (std::int32_t i = 0; i < threads; ++i) {
    const auto t =
        static_cast<std::size_t>(order[static_cast<std::size_t>(i)]);
    const auto next = static_cast<std::size_t>(
        order[static_cast<std::size_t>((i + 1) % threads)]);
    const std::int64_t base = static_cast<std::int64_t>(i) * kStride;
    for (std::int32_t p = 0; p < kPrivate; ++p) maps[t].set(base + p);
    for (std::int32_t p = 0; p < kShared; ++p) {
      maps[t].set(base + kPrivate + p);
      maps[next].set(base + kPrivate + p);
    }
  }
  return maps;
}

void expect_balanced(const Placement& placement) {
  const std::vector<std::int32_t> expected =
      balanced_node_sizes(placement.num_threads(), placement.num_nodes());
  std::vector<std::int32_t> actual(
      static_cast<std::size_t>(placement.num_nodes()), 0);
  for (const NodeId node : placement.node_of_thread()) {
    ASSERT_GE(node, 0);
    ASSERT_LT(node, placement.num_nodes());
    actual[static_cast<std::size_t>(node)] += 1;
  }
  std::sort(actual.begin(), actual.end(), std::greater<>());
  EXPECT_EQ(actual, expected);
}

TEST(Hierarchical, CutCostWithinFactorOfFlatPipelineOnAppKernels) {
  // The property the two-level search trades for O(n·k): its cut may
  // exceed the flat gain-table result, but only by a bounded factor.
  // Measured headroom across the eight kernels is well under 1.5x; the
  // bound is 2x so the test pins the property, not the noise.
  constexpr std::array<const char*, 8> kApps = {
      "SOR", "Water", "FFT7", "LU2k", "Ocean", "Barnes", "Spatial", "FFT6"};
  for (const char* app : kApps) {
    const std::vector<DynamicBitset> bitmaps = tracked_bitmaps(app);
    const CorrelationMatrix dense = CorrelationMatrix::from_bitmaps(bitmaps);
    const SparseCorrelation sparse = SparseCorrelation::from_bitmaps(bitmaps);

    const std::int64_t flat_cut =
        dense.cut_cost(min_cost_placement(dense, kNodes).node_of_thread());
    const Placement hier = hierarchical_min_cost_placement(sparse, kNodes);
    const std::int64_t hier_cut = dense.cut_cost(hier.node_of_thread());

    expect_balanced(hier);
    EXPECT_LE(hier_cut, 2 * flat_cut) << app;
  }
}

TEST(Hierarchical, DeterministicAcrossRunsAndViewKinds) {
  const std::vector<DynamicBitset> bitmaps = tracked_bitmaps("Water");
  const SparseCorrelation sparse = SparseCorrelation::from_bitmaps(bitmaps);
  const CorrelationMatrix dense = CorrelationMatrix::from_bitmaps(bitmaps);

  const Placement first = hierarchical_min_cost_placement(sparse, kNodes);
  const Placement second = hierarchical_min_cost_placement(sparse, kNodes);
  EXPECT_EQ(first.node_of_thread(), second.node_of_thread());

  // The algorithm is view-generic: the exact sparse view and the dense
  // matrix expose identical correlations, so the result must agree.
  const Placement via_dense = hierarchical_min_cost_placement(dense, kNodes);
  EXPECT_EQ(via_dense.node_of_thread(), first.node_of_thread());
}

TEST(Hierarchical, ReportsStatsAndRespectsOptions) {
  const SparseCorrelation sparse =
      SparseCorrelation::from_bitmaps(permuted_ring_bitmaps(256));
  HierarchicalStats stats;
  HierarchicalOptions options;
  options.groups_per_node = 2;
  const Placement placement =
      hierarchical_min_cost_placement(sparse, 16, options, &stats);
  expect_balanced(placement);
  EXPECT_GT(stats.num_groups, 0);
  EXPECT_LE(stats.num_groups, 16 * options.groups_per_node);
  EXPECT_GT(stats.coarsen_rounds, 0);
}

TEST(Hierarchical, BeatsOrderAgnosticPlacementsAtScale) {
  // 1024 permuted-ring threads: the sparse+two-level path must finish
  // (no n² anywhere) and land far below stretch, which splits every
  // permuted neighbour pair it can.
  constexpr std::int32_t threads = 1024;
  constexpr NodeId nodes = 32;
  const SparseCorrelation sparse =
      SparseCorrelation::from_bitmaps(permuted_ring_bitmaps(threads));

  const Placement hier = hierarchical_min_cost_placement(sparse, nodes);
  expect_balanced(hier);

  const std::int64_t hier_cut = sparse.cut_cost(hier.node_of_thread());
  const std::int64_t stretch_cut =
      sparse.cut_cost(Placement::stretch(threads, nodes).node_of_thread());
  EXPECT_LT(hier_cut, stretch_cut / 2);
}

TEST(Hierarchical, SmallClustersDegenerateGracefully) {
  // n == num_nodes: every group is a singleton and every node gets one.
  const SparseCorrelation sparse =
      SparseCorrelation::from_bitmaps(permuted_ring_bitmaps(8));
  const Placement placement = hierarchical_min_cost_placement(sparse, 8);
  expect_balanced(placement);
}

// ---------------------------------------------------------------------
// Runtime wiring: past kDenseThreadCeiling the controllers must run the
// sparse + hierarchical path end to end (and never allocate n² state).

TEST(SparseRuntime, PassiveExperimentRunsAboveTheDenseCeiling) {
  RingWorkload workload(96, 3, 1);
  PassiveTrackingExperiment experiment(workload, 8);
  const std::vector<PassiveRound> rounds = experiment.run(3);
  ASSERT_EQ(rounds.size(), 3u);
  // Completeness is monotone: information only accumulates.
  EXPECT_GE(rounds[2].completeness, rounds[0].completeness);
  EXPECT_GT(rounds[2].completeness, 0.0);
}

TEST(SparseRuntime, AdaptiveControllerRunsAboveTheDenseCeiling) {
  RingWorkload workload(96, 3, 1);
  ClusterRuntime runtime(workload, Placement::stretch(96, 8));
  AdaptiveController controller(&runtime);
  const std::vector<AdaptiveStep> log = controller.run(4);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_TRUE(log[0].tracked);  // first step always tracks
  // The aged dense estimate does not exist on the sparse path.
  EXPECT_THROW((void)controller.correlation(), std::logic_error);
}

TEST(SparseRuntime, DenseCeilingBoundaryUsesTheDensePath) {
  EXPECT_FALSE(use_sparse_correlation(kDenseThreadCeiling));
  EXPECT_TRUE(use_sparse_correlation(kDenseThreadCeiling + 1));
  RingWorkload workload(kDenseThreadCeiling, 3, 1);
  ClusterRuntime runtime(
      workload, Placement::stretch(kDenseThreadCeiling, kNodes));
  AdaptiveController controller(&runtime);
  controller.run(1);
  EXPECT_NO_THROW((void)controller.correlation());
}

}  // namespace
}  // namespace actrack
