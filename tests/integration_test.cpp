// Cross-module integration tests: the paper's end-to-end claims at
// reduced scale (16 threads, 4 nodes) so the whole suite stays fast.
#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "common/stats.hpp"
#include "placement/heuristics.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack {
namespace {

std::int64_t m_cut(const CorrelationMatrix& m, const Placement& p) {
  return m.cut_cost(p.node_of_thread());
}

/// Runs `iters` measured iterations and returns summed metrics.
IterationMetrics measure(const Workload& w, const Placement& p,
                         std::int32_t iters) {
  ClusterRuntime runtime(w, p);
  runtime.run_init();
  runtime.run_iteration();  // warm-up: stabilise replica distribution
  IterationMetrics total;
  for (std::int32_t i = 0; i < iters; ++i) {
    total.add(runtime.run_iteration());
  }
  return total;
}

TEST(EndToEnd, CutCostPredictsRemoteMisses) {
  // §2 / Table 2 in miniature: across random configurations, cut cost
  // and measured remote misses correlate strongly for SOR.
  const auto w = make_workload("SOR", 16);
  const CorrelationMatrix matrix = collect_correlations(*w, 4);
  Rng rng(2024);
  std::vector<double> cuts, misses;
  for (std::int32_t c = 0; c < 12; ++c) {
    const Placement p = random_placement(rng, 16, 4, 2);
    cuts.push_back(static_cast<double>(m_cut(matrix, p)));
    misses.push_back(static_cast<double>(measure(*w, p, 2).remote_misses));
  }
  const LinearFit fit = fit_linear(cuts, misses);
  EXPECT_GT(fit.correlation, 0.9);  // paper: 0.961 for SOR
  EXPECT_GT(fit.slope, 0.0);
}

TEST(EndToEnd, MinCostBeatsRandomOnEveryLockFreeApp) {
  // Table 6 in miniature: min-cost placements produce fewer remote
  // misses and less traffic than random ones.
  Rng rng(7);
  for (const char* name : {"SOR", "FFT6", "LU1k"}) {
    const auto w = make_workload(name, 16);
    const CorrelationMatrix matrix = collect_correlations(*w, 4);
    const Placement good = min_cost_placement(matrix, 4);
    const Placement bad = balanced_random_placement(rng, 16, 4);
    const IterationMetrics gm = measure(*w, good, 2);
    const IterationMetrics bm = measure(*w, bad, 2);
    EXPECT_LE(gm.remote_misses, bm.remote_misses) << name;
    EXPECT_LE(gm.total_bytes, bm.total_bytes) << name;
  }
}

TEST(EndToEnd, StretchNearMinCostOnNearestNeighbourApps) {
  // §5.1: stretch ≈ min-cost for nearest-neighbour sharing.
  const auto w = make_workload("SOR", 16);
  const CorrelationMatrix matrix = collect_correlations(*w, 4);
  const std::int64_t stretch_cut =
      matrix.cut_cost(Placement::stretch(16, 4).node_of_thread());
  const std::int64_t mincost_cut =
      matrix.cut_cost(min_cost_placement(matrix, 4).node_of_thread());
  EXPECT_LE(stretch_cut, mincost_cut + mincost_cut / 100 + 1);
}

TEST(EndToEnd, TrackThenMigrateImprovesSteadyState) {
  // The paper's full workflow: run on a poor placement, track once,
  // migrate everything in one round, and enjoy lower steady-state
  // communication.
  const auto w = make_workload("SOR", 16);
  Rng rng(99);
  const Placement poor = balanced_random_placement(rng, 16, 4);

  ClusterRuntime runtime(*w, poor);
  runtime.run_init();
  runtime.run_iteration();
  const std::int64_t misses_before = runtime.run_iteration().remote_misses;

  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  const CorrelationMatrix matrix =
      CorrelationMatrix::from_bitmaps(tracked.tracking.access_bitmaps);
  const Placement better = min_cost_placement(matrix, 4);
  runtime.migrate_to(better);
  runtime.run_iteration();  // faults from migration settle
  const std::int64_t misses_after = runtime.run_iteration().remote_misses;

  EXPECT_LT(misses_after, misses_before);
}

TEST(EndToEnd, FourNodesBeatEightWhenClustersAreEight) {
  // §3's LU observation, demonstrated with FFT6's eight-thread
  // clusters at 64 threads: an 8-node balanced placement must split
  // every cluster, a 4-node one (16 threads per node) need not split
  // any... at 32 threads, clusters of 8 fit 4 nodes (8/node) but not
  // 8 nodes (4/node).
  const auto w = make_workload("FFT6", 32);
  const CorrelationMatrix matrix = collect_correlations(*w, 4);
  const std::int64_t cut4 =
      matrix.cut_cost(min_cost_placement(matrix, 4).node_of_thread());
  const std::int64_t cut8 =
      matrix.cut_cost(min_cost_placement(matrix, 8).node_of_thread());
  EXPECT_LT(cut4, cut8);
}

TEST(EndToEnd, LatencyTolerationWorthRoughlyTenPercent) {
  // §4.2 cites 10-15% for the multithreading latency toleration that
  // tracking temporarily gives up; our scheduler should show a benefit
  // in that regime on a communication-heavy app.  FFT's transposes give
  // each thread a stream of distinct remote pages whose fetches can
  // overlap other threads' compute.
  const auto w = make_workload("FFT6", 16);
  RuntimeConfig hiding;
  hiding.sched.latency_hiding = true;
  ClusterRuntime a(*w, Placement::stretch(16, 4), hiding);
  a.run_init();
  a.run_iteration();
  const SimTime t_hide = a.run_iteration().elapsed_us;

  RuntimeConfig stall;
  stall.sched.latency_hiding = false;
  ClusterRuntime b(*w, Placement::stretch(16, 4), stall);
  b.run_init();
  b.run_iteration();
  const SimTime t_stall = b.run_iteration().elapsed_us;

  EXPECT_GT(t_stall, t_hide);
  EXPECT_LT(t_stall, t_hide * 2);  // benefit, but not a rewrite of physics
}

}  // namespace
}  // namespace actrack
