// Tests of the adaptive irregular mesh workload (§7 / reference [14]).
#include <gtest/gtest.h>

#include "apps/irregular_mesh.hpp"
#include "correlation/matrix.hpp"
#include "runtime/adaptive.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

TEST(IrregularMesh, TracesAreWellFormed) {
  IrregularMeshWorkload w(16);
  for (std::int32_t iter = 0; iter < 4; ++iter) {
    EXPECT_NO_THROW(validate_trace(w.iteration(iter), w.num_pages()));
  }
}

TEST(IrregularMesh, StableWithinRemeshEpoch) {
  IrregularMeshWorkload::Config config;
  config.remesh_period = 4;
  IrregularMeshWorkload w(16, config);
  const auto a = pages_touched_per_thread(w.iteration(1), w.num_pages());
  const auto b = pages_touched_per_thread(w.iteration(3), w.num_pages());
  EXPECT_EQ(a, b);
}

TEST(IrregularMesh, RemeshChangesTheEdgeSet) {
  IrregularMeshWorkload::Config config;
  config.remesh_period = 4;
  IrregularMeshWorkload w(16, config);
  const auto a = pages_touched_per_thread(w.iteration(1), w.num_pages());
  const auto b = pages_touched_per_thread(w.iteration(5), w.num_pages());
  EXPECT_NE(a, b);
}

TEST(IrregularMesh, RemeshIsPartialNotWholesale) {
  // With element migration disabled (epoch_shift 0), adaptive
  // refinement redraws only a fraction of the edges: consecutive
  // epochs must share most of their (thread, page) pairs.
  IrregularMeshWorkload::Config config;
  config.remesh_period = 4;
  config.epoch_shift = 0;
  IrregularMeshWorkload w(16, config);
  const auto a = pages_touched_per_thread(w.iteration(1), w.num_pages());
  const auto b = pages_touched_per_thread(w.iteration(5), w.num_pages());
  std::int64_t common = 0, total_a = 0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    common += a[t].intersection_count(b[t]);
    total_a += a[t].count();
  }
  EXPECT_GT(common, total_a / 2);
  EXPECT_LT(common, total_a);
}

TEST(IrregularMesh, SharingDecaysWithThreadDistance) {
  IrregularMeshWorkload w(32);
  const CorrelationMatrix m = CorrelationMatrix::from_bitmaps(
      pages_touched_per_thread(w.iteration(1), w.num_pages()));
  // Geometric edge-distance distribution: adjacent threads share more
  // than distant ones, aggregated over several pairs for robustness.
  std::int64_t near = 0, far = 0;
  for (ThreadId t = 0; t < 16; ++t) {
    near += m.at(t, (t + 1) % 32);
    far += m.at(t, (t + 12) % 32);
  }
  EXPECT_GT(near, 2 * far);
}

TEST(IrregularMesh, AdaptiveControllerFollowsRemeshing) {
  IrregularMeshWorkload::Config config;
  config.remesh_period = 6;
  config.remote_edge_percent = 40;
  IrregularMeshWorkload w(16, config);
  ClusterRuntime runtime(w, Placement::stretch(16, 4));
  AdaptivePolicy policy;
  policy.degradation_factor = 1.2;
  policy.cooldown_iterations = 2;
  AdaptiveController controller(&runtime, policy);
  controller.run(24);
  // The mesh keeps changing; the controller must keep re-tracking.
  EXPECT_GT(controller.tracked_iterations(), 1);
}

TEST(IrregularMesh, SeedChangesTheMesh) {
  IrregularMeshWorkload::Config a_config;
  a_config.seed = 1;
  IrregularMeshWorkload::Config b_config;
  b_config.seed = 2;
  IrregularMeshWorkload a(16, a_config);
  IrregularMeshWorkload b(16, b_config);
  EXPECT_NE(pages_touched_per_thread(a.iteration(1), a.num_pages()),
            pages_touched_per_thread(b.iteration(1), b.num_pages()));
}

TEST(IrregularMesh, RejectsBadConfig) {
  IrregularMeshWorkload::Config config;
  config.remote_edge_percent = 150;
  EXPECT_THROW(IrregularMeshWorkload(8, config), std::logic_error);
  config = {};
  config.remesh_period = 0;
  EXPECT_THROW(IrregularMeshWorkload(8, config), std::logic_error);
}

}  // namespace
}  // namespace actrack
