// Link layer (src/link) — packetized selective-repeat ARQ beneath
// NetworkModel — plus the interconnect presets built on top of it.
//
// Five contracts under test:
//   1. Packetization & accounting — MTU framing, frame/ack byte books,
//      and the exact latency arithmetic of a healthy transmit.
//   2. ARQ — dropped frames are recovered by retransmit timers, exactly
//      once; a frame that exhausts its attempt budget fails the whole
//      message (delivered = false) instead of looping forever.
//   3. Determinism — reordering draws come from per-link substreams of
//      LinkConfig::seed: same config twice is bit-identical, and one
//      link's traffic never perturbs another link's fates.  Enabled
//      runs are identical across --jobs.
//   4. Congestion — latency grows once in-flight bytes pass the knee,
//      and the link's decaying backlog carries congestion across
//      messages; a one-frame window stalls the sender measurably.
//   5. Null-by-default — CostModel::link.enabled defaults to false and
//      a disabled run is bit-identical to the pre-link seed, pinned by
//      golden metrics captured before the subsystem existed.
//
// The interconnect presets ride along: myrinet99 must equal the
// calibrated CostModel defaults, and transfer_us() must follow the
// MB = 1e6 convention (MB/s == B/µs) at both ends of the table.
#include "link/link.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/cost_model.hpp"
#include "net/interconnect.hpp"
#include "net/network.hpp"
#include "tools/cli.hpp"

namespace actrack {
namespace {

constexpr NodeId kNodes = 4;
constexpr SimTime kOneWayUs = 110;   // Myrinet calibration
constexpr double kBytesPerUs = 35.0;

LinkConfig enabled_config() {
  LinkConfig config;
  config.enabled = true;
  return config;
}

/// Scripted fate source: drops the first `drop_first` frame
/// transmissions it is asked about, delivers everything after.
class DropFirstFates final : public FrameFateSource {
 public:
  explicit DropFirstFates(std::int32_t drop_first)
      : remaining_(drop_first) {}
  FrameFate frame_fate(ByteCount) override {
    FrameFate fate;
    if (remaining_ > 0) {
      --remaining_;
      fate.dropped = true;
    }
    return fate;
  }

 private:
  std::int32_t remaining_;
};

class AlwaysDropFates final : public FrameFateSource {
 public:
  FrameFate frame_fate(ByteCount) override {
    FrameFate fate;
    fate.dropped = true;
    return fate;
  }
};

// ---------------------------------------------------------------------------
// Packetization & accounting
// ---------------------------------------------------------------------------

TEST(LinkPacketize, SingleFrameMessageHasExactLatencyAndBooks) {
  LinkLayer link(enabled_config(), kNodes, kOneWayUs, kBytesPerUs);
  NullFrameFates fates;
  const LinkLayer::Delivery d = link.transmit(0, 1, 100, fates);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.frames, 1);
  EXPECT_EQ(d.retransmits, 0);
  EXPECT_EQ(d.dropped_frames, 0);
  EXPECT_EQ(d.dup_frames, 0);
  EXPECT_EQ(d.acks, 1);
  // 100 payload + 16 link header on the wire, one 16-byte ack back.
  EXPECT_EQ(d.frame_bytes, 116);
  EXPECT_EQ(d.ack_bytes, 16);
  EXPECT_EQ(d.max_in_flight_bytes, 116);
  EXPECT_EQ(d.stall_us, 0);
  // Serialization (116 B / 35 B/us -> 3us) plus one-way latency.
  EXPECT_EQ(d.latency_us, 3 + kOneWayUs);
}

TEST(LinkPacketize, MessagesSplitIntoCeilMtuFrames) {
  LinkLayer link(enabled_config(), kNodes, kOneWayUs, kBytesPerUs);
  NullFrameFates fates;
  // 10000 bytes over a 4096 MTU: frames of 4096 + 4096 + 1808.
  const LinkLayer::Delivery d = link.transmit(0, 1, 10000, fates);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.frames, 3);
  EXPECT_EQ(d.acks, 3);
  EXPECT_EQ(d.frame_bytes, 10000 + 3 * 16);
  EXPECT_EQ(d.ack_bytes, 3 * 16);
  // All three frames fit in the default 8-frame window at once.
  EXPECT_EQ(d.max_in_flight_bytes, 10000 + 3 * 16);
  // Last frame starts after the first two serialize (117 + 117 us),
  // takes 52us itself, then one way across.
  EXPECT_EQ(d.latency_us, 117 + 117 + 52 + kOneWayUs);
}

TEST(LinkPacketize, EmptyMessageStillCostsOneFrame) {
  // A zero-payload control message still crosses as one header-only
  // frame — the wire has no free lunch.
  LinkLayer link(enabled_config(), kNodes, kOneWayUs, kBytesPerUs);
  NullFrameFates fates;
  const LinkLayer::Delivery d = link.transmit(0, 1, 0, fates);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.frames, 1);
  EXPECT_EQ(d.frame_bytes, 16);
}

TEST(LinkConfigValidation, ConstructorRejectsNonsense) {
  const auto build = [](LinkConfig config) {
    LinkLayer link(config, kNodes, kOneWayUs, kBytesPerUs);
    (void)link;
  };
  EXPECT_THROW(build(LinkConfig{}), std::logic_error);  // not enabled
  LinkConfig bad = enabled_config();
  bad.mtu_bytes = 0;
  EXPECT_THROW(build(bad), std::logic_error);
  bad = enabled_config();
  bad.window_frames = 0;
  EXPECT_THROW(build(bad), std::logic_error);
  bad = enabled_config();
  bad.reorder_probability = 1.5;
  EXPECT_THROW(build(bad), std::logic_error);
  EXPECT_THROW(LinkLayer(enabled_config(), kNodes, kOneWayUs, 0.0),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// ARQ recovery
// ---------------------------------------------------------------------------

TEST(LinkArq, DroppedFramesAreRetransmittedExactlyOnce) {
  LinkLayer link(enabled_config(), kNodes, kOneWayUs, kBytesPerUs);
  NullFrameFates healthy;
  const LinkLayer::Delivery clean = link.transmit(0, 1, 10000, healthy);

  // All three initial transmissions are lost; the retransmit timers
  // recover each frame on its second attempt.
  DropFirstFates fates(3);
  const LinkLayer::Delivery d = link.transmit(2, 3, 10000, fates);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.frames, 3);
  EXPECT_EQ(d.dropped_frames, 3);
  EXPECT_EQ(d.retransmits, 3);
  EXPECT_EQ(d.acks, 3);
  // Dropped copies still crossed (and were charged) once each.
  EXPECT_EQ(d.frame_bytes, 2 * (10000 + 3 * 16));
  // Recovery costs a timeout's worth of latency and sender stall.
  EXPECT_GT(d.latency_us,
            clean.latency_us + link.config().retransmit_timeout_us);
  EXPECT_GT(d.stall_us, 0);
}

TEST(LinkArq, ExhaustedAttemptBudgetFailsTheMessage) {
  LinkConfig config = enabled_config();
  config.max_frame_attempts = 3;
  LinkLayer link(config, kNodes, kOneWayUs, kBytesPerUs);
  AlwaysDropFates fates;
  const LinkLayer::Delivery d = link.transmit(0, 1, 100, fates);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.frames, 1);
  EXPECT_EQ(d.retransmits, config.max_frame_attempts - 1);
  EXPECT_EQ(d.dropped_frames, config.max_frame_attempts);
  EXPECT_EQ(d.acks, 0);
}

TEST(LinkArq, DuplicateFatesOnlyInflateTheTrafficBooks) {
  class DuplicateFates final : public FrameFateSource {
   public:
    FrameFate frame_fate(ByteCount) override {
      FrameFate fate;
      fate.copies = 2;
      return fate;
    }
  };
  LinkLayer link(enabled_config(), kNodes, kOneWayUs, kBytesPerUs);
  DuplicateFates fates;
  const LinkLayer::Delivery d = link.transmit(0, 1, 100, fates);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.frames, 1);
  EXPECT_EQ(d.dup_frames, 1);
  EXPECT_EQ(d.retransmits, 0);
  EXPECT_EQ(d.frame_bytes, 2 * 116);  // the copy is charged to the wire
  EXPECT_EQ(d.acks, 1);               // but delivered exactly once
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

std::vector<LinkLayer::Delivery> reordered_burst(LinkLayer& link,
                                                 NodeId from, NodeId to) {
  NullFrameFates fates;
  std::vector<LinkLayer::Delivery> out;
  for (int i = 0; i < 16; ++i) {
    out.push_back(link.transmit(from, to, 3000 + i * 977, fates));
  }
  return out;
}

void expect_same_delivery(const LinkLayer::Delivery& a,
                          const LinkLayer::Delivery& b, int index) {
  SCOPED_TRACE("message " + std::to_string(index));
  EXPECT_EQ(a.latency_us, b.latency_us);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.acks, b.acks);
  EXPECT_EQ(a.frame_bytes, b.frame_bytes);
  EXPECT_EQ(a.stall_us, b.stall_us);
  EXPECT_EQ(a.max_in_flight_bytes, b.max_in_flight_bytes);
}

TEST(LinkDeterminism, SameSeedYieldsIdenticalReorderedDeliveries) {
  LinkConfig config = enabled_config();
  config.reorder_probability = 0.5;
  LinkLayer first(config, kNodes, kOneWayUs, kBytesPerUs);
  LinkLayer second(config, kNodes, kOneWayUs, kBytesPerUs);
  const auto a = reordered_burst(first, 0, 1);
  const auto b = reordered_burst(second, 0, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_delivery(a[i], b[i], static_cast<int>(i));
  }
}

TEST(LinkDeterminism, DifferentSeedReshufflesJitter) {
  LinkConfig config = enabled_config();
  config.reorder_probability = 0.5;
  LinkLayer first(config, kNodes, kOneWayUs, kBytesPerUs);
  config.seed ^= 0xABCDEF;
  LinkLayer second(config, kNodes, kOneWayUs, kBytesPerUs);
  const auto a = reordered_burst(first, 0, 1);
  const auto b = reordered_burst(second, 0, 1);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference = any_difference || a[i].latency_us != b[i].latency_us;
  }
  EXPECT_TRUE(any_difference);
}

TEST(LinkDeterminism, LinksDrawFromIndependentSubstreams) {
  // Heavy traffic on (0,1) must not perturb the fates (2,3) sees: its
  // deliveries match a fresh layer where (2,3) is the only user.
  LinkConfig config = enabled_config();
  config.reorder_probability = 0.5;
  LinkLayer busy(config, kNodes, kOneWayUs, kBytesPerUs);
  (void)reordered_burst(busy, 0, 1);
  LinkLayer quiet(config, kNodes, kOneWayUs, kBytesPerUs);
  const auto a = reordered_burst(busy, 2, 3);
  const auto b = reordered_burst(quiet, 2, 3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_delivery(a[i], b[i], static_cast<int>(i));
  }
}

// ---------------------------------------------------------------------------
// Congestion & windowing
// ---------------------------------------------------------------------------

TEST(LinkCongestion, LatencyGrowsOncePastTheKnee) {
  LinkConfig congested = enabled_config();
  congested.congestion_knee_bytes = 1024;
  congested.congestion_us_per_kb = 100;
  LinkConfig flat = congested;
  flat.congestion_us_per_kb = 0;
  LinkLayer slow(congested, kNodes, kOneWayUs, kBytesPerUs);
  LinkLayer fast(flat, kNodes, kOneWayUs, kBytesPerUs);
  NullFrameFates fates;
  // Three full frames push in-flight bytes well past the 1 KiB knee.
  const LinkLayer::Delivery d_slow = slow.transmit(0, 1, 12288, fates);
  const LinkLayer::Delivery d_fast = fast.transmit(0, 1, 12288, fates);
  EXPECT_GT(d_slow.latency_us, d_fast.latency_us);
}

TEST(LinkCongestion, BacklogCarriesCongestionAcrossMessages) {
  LinkConfig config = enabled_config();
  config.congestion_knee_bytes = 1024;
  config.congestion_us_per_kb = 100;
  LinkLayer link(config, kNodes, kOneWayUs, kBytesPerUs);
  NullFrameFates fates;
  const LinkLayer::Delivery first = link.transmit(0, 1, 12288, fates);
  EXPECT_GT(link.backlog_bytes(0, 1), 0);
  EXPECT_EQ(link.backlog_bytes(1, 0), 0) << "backlog is per directed link";
  // The second identical message rides on the first one's backlog.
  const LinkLayer::Delivery second = link.transmit(0, 1, 12288, fates);
  EXPECT_GT(second.latency_us, first.latency_us);
}

TEST(LinkWindow, OneFrameWindowStallsTheSender) {
  LinkConfig config = enabled_config();
  config.window_frames = 1;
  LinkLayer link(config, kNodes, kOneWayUs, kBytesPerUs);
  NullFrameFates fates;
  const LinkLayer::Delivery d = link.transmit(0, 1, 12288, fates);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.frames, 3);
  // Each frame waits for the previous frame's ack: the sender stalls
  // about one round trip per follow-on frame...
  EXPECT_GE(d.stall_us, 2 * (2 * kOneWayUs));
  // ...and the window never holds more than one frame.
  EXPECT_EQ(d.max_in_flight_bytes, 4096 + 16);
}

// ---------------------------------------------------------------------------
// Interconnect presets & the MB = 1e6 unit convention
// ---------------------------------------------------------------------------

TEST(Interconnect, Myrinet99IsExactlyTheCalibratedDefaults) {
  const InterconnectPreset* preset = find_interconnect("myrinet99");
  ASSERT_NE(preset, nullptr);
  const CostModel applied = preset->apply();
  const CostModel defaults;
  EXPECT_EQ(applied.net_latency_us, defaults.net_latency_us);
  EXPECT_EQ(applied.net_bandwidth_mb_per_s, defaults.net_bandwidth_mb_per_s);
  EXPECT_EQ(applied.barrier_us, defaults.barrier_us);
  EXPECT_EQ(applied.lock_transfer_us, defaults.lock_transfer_us);
  // apply() replaces only the four network-bound costs.
  EXPECT_EQ(applied.fault_trap_us, defaults.fault_trap_us);
  EXPECT_EQ(applied.diff_create_us_per_kb, defaults.diff_create_us_per_kb);
}

TEST(Interconnect, TransferCostFollowsTheDecimalMegabyteConvention) {
  // MB = 1e6, so X MB/s is exactly X bytes/us — bytes_per_us() is the
  // single place that conversion happens.
  const CostModel myrinet = find_interconnect("myrinet99")->apply();
  EXPECT_DOUBLE_EQ(myrinet.bytes_per_us(), 35.0);
  // 4096 B + 64 B header at 35 B/us = 118.8 -> 118us, plus 110us latency.
  EXPECT_EQ(myrinet.transfer_us(4096), 110 + 118);
  // A decimal megabyte takes 1000064/35 = 28573us on the wire.
  EXPECT_EQ(myrinet.transfer_us(1'000'000), 110 + 28573);

  const CostModel rdma = find_interconnect("rdma26")->apply();
  EXPECT_DOUBLE_EQ(rdma.bytes_per_us(), 10000.0);
  // The same page is sub-microsecond on the wire: latency dominates.
  EXPECT_EQ(rdma.transfer_us(4096), 2);
  EXPECT_EQ(rdma.transfer_us(1'000'000), 2 + 100);
}

TEST(Interconnect, ZeroBandwidthIsRejectedNotDividedBy) {
  CostModel cost;
  cost.net_bandwidth_mb_per_s = 0.0;
  EXPECT_THROW((void)cost.bytes_per_us(), std::logic_error);
  EXPECT_THROW((void)cost.transfer_us(4096), std::logic_error);
}

TEST(Interconnect, TableIsOrderedAndWellFormed) {
  const std::vector<InterconnectPreset>& presets = interconnect_presets();
  ASSERT_GE(presets.size(), 5u);
  std::set<std::string> names;
  for (std::size_t i = 0; i < presets.size(); ++i) {
    names.insert(presets[i].name);
    EXPECT_EQ(find_interconnect(presets[i].name), &presets[i]);
    EXPECT_NE(interconnect_names().find(presets[i].name),
              std::string::npos);
    if (i == 0) continue;
    // Oldest first: latency falls, bandwidth rises, and the
    // latency-dominated rendezvous costs shrink with them.
    EXPECT_LT(presets[i].net_latency_us, presets[i - 1].net_latency_us);
    EXPECT_GT(presets[i].net_bandwidth_mb_per_s,
              presets[i - 1].net_bandwidth_mb_per_s);
    EXPECT_LT(presets[i].barrier_us, presets[i - 1].barrier_us);
    EXPECT_LT(presets[i].lock_transfer_us, presets[i - 1].lock_transfer_us);
  }
  EXPECT_EQ(names.size(), presets.size()) << "preset names must be unique";
  EXPECT_EQ(find_interconnect("token-ring"), nullptr);
}

// ---------------------------------------------------------------------------
// NetworkModel integration: null-by-default and --jobs determinism
// ---------------------------------------------------------------------------

TEST(LinkNetwork, DisabledCostModelAttachesNoLinkLayer) {
  NetworkModel net(kNodes, CostModel{});
  EXPECT_FALSE(net.link_enabled());
  // The flat path books no frame activity at all.
  (void)net.send(0, 1, 4096, PayloadKind::kFullPage);
  EXPECT_EQ(net.totals().frames, 0);
  EXPECT_EQ(net.totals().acks, 0);
  EXPECT_EQ(net.totals().link_bytes, 0);
}

TEST(LinkNetwork, EnabledSendBooksFramesAndMatchesTheLinkClock) {
  CostModel cost;
  cost.link.enabled = true;
  NetworkModel net(kNodes, cost);
  ASSERT_TRUE(net.link_enabled());
  const SimTime latency = net.send(0, 1, 4096, PayloadKind::kFullPage);
  // 4096 + 64 message header packetizes into 2 frames (4096 + 64).
  EXPECT_EQ(net.totals().frames, 2);
  EXPECT_EQ(net.totals().acks, 2);
  EXPECT_EQ(net.totals().messages, 1);
  EXPECT_EQ(net.totals().total_bytes, 4096 + 64);
  EXPECT_EQ(net.totals().link_bytes, 4096 + 64 + 2 * 16 + 2 * 16);
  EXPECT_GT(latency, 0);
}

std::string sweep_json(std::initializer_list<const char*> args) {
  std::vector<std::string> v;
  for (const char* arg : args) v.emplace_back(arg);
  std::ostringstream out;
  EXPECT_EQ(cli::run(cli::parse(v), out), 0);
  return out.str();
}

TEST(LinkNullByDefault, DisabledSweepMatchesThePreLinkGoldenMetrics) {
  // Golden values captured from the seed build, before src/link existed.
  // A disabled link must leave every one of them bit-identical — this
  // is the pin for the "null by default" contract at full-stack scope.
  const std::string json =
      sweep_json({"sweep", "--format", "json", "--app", "SOR", "--threads",
                  "16", "--nodes", "4", "--iterations", "2"});
  for (const char* golden : {
           // stretch (and mincost, which coincides for SOR at this size)
           "\"m_elapsed_us\": 844164", "\"m_remote_misses\": 48",
           "\"m_messages\": 96", "\"m_total_bytes\": 129024",
           "\"m_diff_bytes\": 73728", "\"t_elapsed_us\": 1599517",
           "\"net_messages\": 6308", "\"net_total_bytes\": 13224192",
           "\"dsm_remote_misses\": 3146",
           // random placement
           "\"m_elapsed_us\": 856940", "\"m_remote_misses\": 208",
           "\"t_elapsed_us\": 1617821", "\"net_messages\": 6850",
           "\"net_total_bytes\": 14041216", "\"dsm_remote_misses\": 3386",
       }) {
    EXPECT_NE(json.find(golden), std::string::npos) << golden;
  }
  // And the disabled link books exactly nothing.
  EXPECT_EQ(json.find("\"net_frames\": 0") == std::string::npos, false);
  EXPECT_EQ(json.find("\"net_frames\": 1"), std::string::npos);
}

TEST(LinkJobsDeterminism, EnabledSweepIsIdenticalAcrossJobCounts) {
  const std::string serial =
      sweep_json({"sweep", "--format", "json", "--app", "Water", "--threads",
                  "16", "--nodes", "4", "--iterations", "2", "--link",
                  "--jobs", "1"});
  const std::string parallel =
      sweep_json({"sweep", "--format", "json", "--app", "Water", "--threads",
                  "16", "--nodes", "4", "--iterations", "2", "--link",
                  "--jobs", "4"});
  EXPECT_EQ(serial, parallel);
  // The link actually ran: frames were booked.
  EXPECT_EQ(serial.find("\"net_frames\": 0"), std::string::npos);
}

TEST(LinkCli, InterconnectFlagAppliesThePresetAndRejectsUnknowns) {
  const std::string rdma =
      sweep_json({"sweep", "--format", "json", "--app", "SOR", "--threads",
                  "16", "--nodes", "4", "--iterations", "2",
                  "--interconnect", "rdma26"});
  // 55x lower latency: the whole run is far faster than the golden
  // myrinet numbers above.
  EXPECT_EQ(rdma.find("\"t_elapsed_us\": 1599517"), std::string::npos);
  std::vector<std::string> v{"sweep", "--interconnect", "arcnet"};
  std::ostringstream out;
  EXPECT_THROW((void)cli::run(cli::parse(v), out), std::invalid_argument);
}

}  // namespace
}  // namespace actrack
