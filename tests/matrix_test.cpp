#include "correlation/matrix.hpp"

#include <gtest/gtest.h>

namespace actrack {
namespace {

TEST(CorrelationMatrixTest, StartsZero) {
  CorrelationMatrix m(4);
  EXPECT_EQ(m.num_threads(), 4);
  for (ThreadId i = 0; i < 4; ++i) {
    for (ThreadId j = 0; j < 4; ++j) EXPECT_EQ(m.at(i, j), 0);
  }
}

TEST(CorrelationMatrixTest, SetIsSymmetric) {
  CorrelationMatrix m(3);
  m.set(0, 2, 7);
  EXPECT_EQ(m.at(0, 2), 7);
  EXPECT_EQ(m.at(2, 0), 7);
}

TEST(CorrelationMatrixTest, FromBitmapsComputesSharedPages) {
  // Thread 0: pages {0,1,2}; thread 1: pages {1,2,3}; thread 2: {5}.
  std::vector<DynamicBitset> bitmaps(3, DynamicBitset(8));
  bitmaps[0].set(0);
  bitmaps[0].set(1);
  bitmaps[0].set(2);
  bitmaps[1].set(1);
  bitmaps[1].set(2);
  bitmaps[1].set(3);
  bitmaps[2].set(5);
  const CorrelationMatrix m = CorrelationMatrix::from_bitmaps(bitmaps);
  EXPECT_EQ(m.at(0, 1), 2);  // pages 1 and 2
  EXPECT_EQ(m.at(0, 2), 0);
  EXPECT_EQ(m.at(1, 2), 0);
  // Diagonal is the thread's own page count.
  EXPECT_EQ(m.at(0, 0), 3);
  EXPECT_EQ(m.at(1, 1), 3);
  EXPECT_EQ(m.at(2, 2), 1);
}

TEST(CorrelationMatrixTest, MaxOffDiagonalIgnoresDiagonal) {
  CorrelationMatrix m(3);
  m.set(0, 0, 100);
  m.set(1, 2, 9);
  EXPECT_EQ(m.max_off_diagonal(), 9);
}

TEST(CorrelationMatrixTest, CutCostCountsCrossNodePairsOnce) {
  CorrelationMatrix m(4);
  m.set(0, 1, 5);
  m.set(0, 2, 3);
  m.set(1, 3, 2);
  m.set(2, 3, 7);
  // Nodes: {0,1} on node 0, {2,3} on node 1.
  const std::vector<NodeId> assignment = {0, 0, 1, 1};
  // Cross pairs: (0,2)=3, (0,3)=0, (1,2)=0, (1,3)=2 → 5.
  EXPECT_EQ(m.cut_cost(assignment), 5);
}

TEST(CorrelationMatrixTest, AllOnOneNodeHasZeroCut) {
  CorrelationMatrix m(4);
  m.set(0, 1, 5);
  m.set(2, 3, 7);
  EXPECT_EQ(m.cut_cost({0, 0, 0, 0}), 0);
}

TEST(CorrelationMatrixTest, AllSeparateEqualsTotalPairCorrelation) {
  CorrelationMatrix m(4);
  m.set(0, 1, 5);
  m.set(0, 2, 3);
  m.set(1, 3, 2);
  m.set(2, 3, 7);
  EXPECT_EQ(m.cut_cost({0, 1, 2, 3}), m.total_pair_correlation());
  EXPECT_EQ(m.total_pair_correlation(), 17);
}

TEST(CorrelationMatrixTest, CutCostRejectsWrongSize) {
  CorrelationMatrix m(4);
  EXPECT_THROW((void)m.cut_cost({0, 1}), std::logic_error);
}

TEST(CorrelationMatrixTest, RejectsNegativeValues) {
  CorrelationMatrix m(2);
  EXPECT_THROW(m.set(0, 1, -1), std::logic_error);
}

TEST(CorrelationMatrixTest, FromBitmapsRejectsEmpty) {
  std::vector<DynamicBitset> empty;
  EXPECT_THROW((void)CorrelationMatrix::from_bitmaps(empty),
               std::logic_error);
}

TEST(CorrelationMatrixTest, OutOfRangeIndexThrows) {
  CorrelationMatrix m(2);
  EXPECT_THROW((void)m.at(2, 0), std::logic_error);
  EXPECT_THROW((void)m.at(0, -1), std::logic_error);
  EXPECT_THROW(m.set(2, 0, 1), std::logic_error);
}

}  // namespace
}  // namespace actrack
