#include <gtest/gtest.h>

#include "placement/heuristics.hpp"

namespace actrack {
namespace {

CorrelationMatrix random_matrix(std::int32_t n, std::uint64_t seed,
                                std::int64_t max_weight = 50) {
  CorrelationMatrix m(n);
  Rng rng(seed);
  for (ThreadId i = 0; i < n; ++i) {
    for (ThreadId j = i + 1; j < n; ++j) {
      m.set(i, j, rng.uniform(max_weight));
    }
  }
  return m;
}

TEST(MigrationBudget, ZeroBudgetKeepsPlacement) {
  const CorrelationMatrix m = random_matrix(12, 1);
  const Placement current = Placement::stretch(12, 3);
  const Placement result = min_cost_within_budget(m, current, 0);
  EXPECT_EQ(result, current);
}

TEST(MigrationBudget, RespectsBudget) {
  const CorrelationMatrix m = random_matrix(16, 2);
  const Placement current = Placement::stretch(16, 4);
  for (const std::int32_t budget : {1, 2, 4, 6, 10}) {
    const Placement result = min_cost_within_budget(m, current, budget);
    EXPECT_LE(current.migration_distance(result), budget)
        << "budget " << budget;
  }
}

TEST(MigrationBudget, NeverWorsensCut) {
  const CorrelationMatrix m = random_matrix(16, 3);
  Rng rng(4);
  const Placement current = balanced_random_placement(rng, 16, 4);
  for (const std::int32_t budget : {0, 2, 4, 8, 16}) {
    const Placement result = min_cost_within_budget(m, current, budget);
    EXPECT_LE(m.cut_cost(result.node_of_thread()),
              m.cut_cost(current.node_of_thread()));
  }
}

TEST(MigrationBudget, PreservesNodePopulations) {
  const CorrelationMatrix m = random_matrix(12, 5);
  const Placement current({0, 0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 2}, 3);
  const Placement result = min_cost_within_budget(m, current, 6);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(result.threads_on(n), current.threads_on(n));
  }
}

TEST(MigrationBudget, MoreBudgetNeverHurts) {
  const CorrelationMatrix m = random_matrix(16, 6);
  Rng rng(7);
  const Placement current = balanced_random_placement(rng, 16, 4);
  std::int64_t previous = m.cut_cost(current.node_of_thread());
  for (const std::int32_t budget : {2, 4, 8, 16}) {
    const std::int64_t cut = m.cut_cost(
        min_cost_within_budget(m, current, budget).node_of_thread());
    EXPECT_LE(cut, previous) << "budget " << budget;
    previous = cut;
  }
}

TEST(MigrationBudget, UnlimitedBudgetApproachesFullRefinement) {
  const CorrelationMatrix m = random_matrix(12, 8);
  Rng rng(9);
  const Placement current = balanced_random_placement(rng, 12, 3);
  const std::int64_t budgeted = m.cut_cost(
      min_cost_within_budget(m, current, 12).node_of_thread());
  const std::int64_t refined =
      m.cut_cost(refine_by_swaps(m, current).node_of_thread());
  EXPECT_EQ(budgeted, refined);  // same swap descent once unconstrained
}

TEST(MigrationBudget, TwoMovesFixTheWorstPair) {
  // Threads 0 and 5 share heavily but sit on different nodes; one swap
  // (two moves) must reunite them.
  CorrelationMatrix m(8);
  m.set(0, 5, 100);
  const Placement current = Placement::stretch(8, 2);  // 0..3 | 4..7
  const Placement result = min_cost_within_budget(m, current, 2);
  EXPECT_EQ(result.node_of(0), result.node_of(5));
  EXPECT_EQ(m.cut_cost(result.node_of_thread()), 0);
}

TEST(MigrationBudget, RejectsMismatchedInputs) {
  const CorrelationMatrix m = random_matrix(8, 10);
  const Placement current = Placement::stretch(12, 3);
  EXPECT_THROW((void)min_cost_within_budget(m, current, 2),
               std::logic_error);
  const Placement ok = Placement::stretch(8, 2);
  EXPECT_THROW((void)min_cost_within_budget(m, ok, -1), std::logic_error);
}

}  // namespace
}  // namespace actrack
