#include "net/network.hpp"

#include <gtest/gtest.h>

namespace actrack {
namespace {

TEST(CostModel, TransferTimeIsLatencyPlusBandwidth) {
  CostModel cost;
  cost.net_latency_us = 100;
  cost.net_bandwidth_mb_per_s = 40.0;
  cost.message_header_bytes = 0;
  // 4000 bytes at 40 B/µs = 100 µs on the wire.
  EXPECT_EQ(cost.transfer_us(4000), 200);
  // Round trip adds the request latency.
  EXPECT_EQ(cost.round_trip_us(4000), 300);
}

TEST(CostModel, HeaderBytesCountTowardTransfer) {
  CostModel cost;
  cost.net_latency_us = 0;
  cost.net_bandwidth_mb_per_s = 1.0;
  cost.message_header_bytes = 64;
  EXPECT_EQ(cost.transfer_us(0), 64);
}

TEST(NetworkModel, CountsMessagesAndBytes) {
  NetworkModel net(4, CostModel{});
  net.send(0, 1, 1000, PayloadKind::kFullPage);
  net.send(1, 0, 500, PayloadKind::kDiff);
  net.send(2, 3, 0, PayloadKind::kControl);

  const NetCounters& totals = net.totals();
  EXPECT_EQ(totals.messages, 3);
  EXPECT_EQ(totals.total_bytes,
            1000 + 500 + 0 + 3 * CostModel{}.message_header_bytes);
  EXPECT_EQ(totals.diff_bytes, 500);
  EXPECT_EQ(totals.page_bytes, 1000);
}

TEST(NetworkModel, PerNodeAttributionToSender) {
  NetworkModel net(3, CostModel{});
  net.send(0, 1, 100, PayloadKind::kDiff);
  net.send(0, 2, 100, PayloadKind::kDiff);
  net.send(2, 0, 100, PayloadKind::kControl);
  EXPECT_EQ(net.node_counters(0).messages, 2);
  EXPECT_EQ(net.node_counters(1).messages, 0);
  EXPECT_EQ(net.node_counters(2).messages, 1);
  EXPECT_EQ(net.node_counters(0).diff_bytes, 200);
}

TEST(NetworkModel, RejectsLoopback) {
  NetworkModel net(2, CostModel{});
  EXPECT_THROW(net.send(1, 1, 10, PayloadKind::kControl), std::logic_error);
}

TEST(NetworkModel, RejectsBadNodesAndSizes) {
  NetworkModel net(2, CostModel{});
  EXPECT_THROW(net.send(-1, 0, 10, PayloadKind::kControl), std::logic_error);
  EXPECT_THROW(net.send(0, 2, 10, PayloadKind::kControl), std::logic_error);
  EXPECT_THROW(net.send(0, 1, -5, PayloadKind::kControl), std::logic_error);
}

TEST(NetworkModel, ResetClearsCounters) {
  NetworkModel net(2, CostModel{});
  net.send(0, 1, 100, PayloadKind::kDiff);
  net.reset_counters();
  EXPECT_EQ(net.totals().messages, 0);
  EXPECT_EQ(net.totals().total_bytes, 0);
  EXPECT_EQ(net.node_counters(0).messages, 0);
}

TEST(NetworkModel, SendReturnsTransferTime) {
  CostModel cost;
  NetworkModel net(2, cost);
  EXPECT_EQ(net.send(0, 1, 4096, PayloadKind::kFullPage),
            cost.transfer_us(4096));
}

TEST(NetCountersTest, AddAccumulates) {
  NetCounters a{1, 100, 20, 30};
  NetCounters b{2, 200, 40, 60};
  a.add(b);
  EXPECT_EQ(a.messages, 3);
  EXPECT_EQ(a.total_bytes, 300);
  EXPECT_EQ(a.diff_bytes, 60);
  EXPECT_EQ(a.page_bytes, 90);
}

}  // namespace
}  // namespace actrack
