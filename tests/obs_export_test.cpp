// Exporter tests: the Chrome trace document is well-formed JSON, every
// lane's events are time-ordered, duration (B/E) pairs nest by name,
// and the CSV / timeline exporters render what the recorder holds.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/workload.hpp"
#include "obs/export.hpp"
#include "obs/probe.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack::obs {
namespace {

// ---- a minimal JSON validator (no external deps) ---------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- per-event line scraping ----------------------------------------

struct TraceLine {
  std::string name;
  char ph = '?';
  std::int64_t ts = 0;
  std::int64_t pid = 0;
  std::int64_t tid = 0;
};

std::int64_t field_int(const std::string& line, const std::string& key) {
  const std::size_t at = line.find("\"" + key + "\": ");
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
  return std::stoll(line.substr(at + key.size() + 4));
}

std::string field_string(const std::string& line, const std::string& key) {
  const std::size_t at = line.find("\"" + key + "\": \"");
  EXPECT_NE(at, std::string::npos) << key << " missing in: " << line;
  const std::size_t start = at + key.size() + 5;
  return line.substr(start, line.find('"', start) - start);
}

/// Data events only (cat "sim"), in document order.
std::vector<TraceLine> scrape(const std::string& json) {
  std::vector<TraceLine> lines;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"cat\": \"sim\"") == std::string::npos) continue;
    TraceLine t;
    t.name = field_string(line, "name");
    t.ph = field_string(line, "ph")[0];
    t.ts = field_int(line, "ts");
    t.pid = field_int(line, "pid");
    t.tid = field_int(line, "tid");
    lines.push_back(std::move(t));
  }
  return lines;
}

/// A probed mini-run covering faults, fetches, barriers and tracking.
std::string profile_sor(Probe& probe) {
  const auto w = make_workload("SOR", 16);
  RuntimeConfig config;
  config.probe = &probe;
  ClusterRuntime runtime(*w, Placement::stretch(16, 4), config);
  runtime.run_init();
  runtime.run_iteration();
  runtime.run_tracked_iteration();
  return chrome_trace_json(probe.trace());
}

TEST(ChromeTrace, DocumentIsValidJson) {
  Probe probe;
  const std::string json = profile_sor(probe);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(ChromeTrace, EventsAreTimeOrderedPerLane) {
  Probe probe;
  const std::vector<TraceLine> lines = scrape(profile_sor(probe));
  ASSERT_FALSE(lines.empty());
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> last;
  for (const TraceLine& t : lines) {
    const auto lane = std::make_pair(t.pid, t.tid);
    const auto it = last.find(lane);
    if (it != last.end()) {
      EXPECT_GE(t.ts, it->second) << t.name << " went backwards";
    }
    last[lane] = t.ts;
  }
  EXPECT_GE(last.size(), 4u);  // at least one lane per node
}

TEST(ChromeTrace, DurationPairsNestAndBalance) {
  Probe probe;
  const std::vector<TraceLine> lines = scrape(profile_sor(probe));
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<std::string>>
      open;
  std::int64_t pairs = 0;
  for (const TraceLine& t : lines) {
    auto& stack = open[{t.pid, t.tid}];
    if (t.ph == 'B') {
      stack.push_back(t.name);
    } else if (t.ph == 'E') {
      ASSERT_FALSE(stack.empty()) << "E without B: " << t.name;
      EXPECT_EQ(stack.back(), t.name) << "mismatched nesting";
      stack.pop_back();
      pairs += 1;
    }
  }
  for (const auto& [lane, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed " << stack.size() << " spans";
  }
  EXPECT_GT(pairs, 0);
}

TEST(ChromeTrace, EqualTimestampsKeepRecordingOrder) {
  // A fetch of zero latency records B then E at the same microsecond;
  // the stable sort must not swap them.
  Probe probe;
  probe.begin_step(StepCode::kIteration, 0, 0);
  probe.remote_fetch(0, 0, 42, /*start_us=*/10, /*latency_us=*/0);
  probe.remote_fetch(0, 0, 43, /*start_us=*/10, /*latency_us=*/0);
  std::vector<TraceLine> lines = scrape(chrome_trace_json(probe.trace()));
  std::erase_if(lines, [](const TraceLine& t) {
    return t.ph != 'B' && t.ph != 'E';  // drop the step marker
  });
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].ph, 'B');
  EXPECT_EQ(lines[1].ph, 'E');
  EXPECT_EQ(lines[2].ph, 'B');
  EXPECT_EQ(lines[3].ph, 'E');
}

TEST(EventCsv, OneRowPerEventWithHeader) {
  Probe probe;
  probe.begin_step(StepCode::kInit, 0, 0);
  probe.page_fault(1, 2, 7, /*write=*/true, /*at_us=*/5);
  probe.gc_run(3);
  std::ostringstream out;
  write_event_csv(probe.trace(), out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("time_us,kind,node,thread,a,b", 0), 0u);
  EXPECT_NE(csv.find("5,page_fault,1,2,7,1"), std::string::npos);
  EXPECT_NE(csv.find(",step,"), std::string::npos);
  EXPECT_NE(csv.find(",gc,"), std::string::npos);
}

TEST(Timeline, RendersOneSeriesPerNode) {
  Probe probe;
  probe.begin_step(StepCode::kIteration, 0, 0);
  probe.node_idle(0, /*start_us=*/0, /*duration_us=*/500);
  probe.node_idle(1, /*start_us=*/500, /*duration_us=*/500);
  probe.barrier_arrive(0, 1000);
  probe.barrier_depart(0, 1000);
  const std::string svg =
      render_utilization_timeline(probe.trace(), 2, /*buckets=*/10);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("node 0"), std::string::npos);
  EXPECT_NE(svg.find("node 1"), std::string::npos);
  EXPECT_NE(svg.find("utilization"), std::string::npos);
}

TEST(Timeline, RejectsEmptyTraceAndBadArgs) {
  Probe probe;
  EXPECT_THROW((void)render_utilization_timeline(probe.trace(), 2),
               std::logic_error);
  probe.barrier_arrive(0, 10);
  EXPECT_THROW((void)render_utilization_timeline(probe.trace(), 0),
               std::logic_error);
  EXPECT_NO_THROW((void)render_utilization_timeline(probe.trace(), 1));
}

TEST(Timeline, FullRunRenders) {
  Probe probe;
  profile_sor(probe);
  const std::string svg = render_utilization_timeline(probe.trace(), 4);
  EXPECT_NE(svg.find("node 3"), std::string::npos);
}

}  // namespace
}  // namespace actrack::obs
