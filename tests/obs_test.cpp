// Observability subsystem tests: the recorder's bounded-buffer
// semantics, the metrics registry, and the two system-level guarantees
// the Probe design makes — attaching a probe never changes simulation
// results, and the fetch-latency histogram reconciles with the
// runtime's remote-miss count.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "apps/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace_recorder.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack::obs {
namespace {

Event event_at(SimTime t, EventKind kind = EventKind::kPageFault) {
  Event e;
  e.time_us = t;
  e.kind = kind;
  e.node = 0;
  e.thread = 0;
  return e;
}

TEST(TraceRecorder, StoresEventsInRecordingOrder) {
  TraceRecorder trace;
  for (SimTime t = 0; t < 10; ++t) trace.record(event_at(t * 5));
  EXPECT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace.dropped(), 0);
  SimTime expect = 0;
  trace.for_each([&](const Event& e) {
    EXPECT_EQ(e.time_us, expect);
    expect += 5;
  });
}

TEST(TraceRecorder, DropsAndCountsBeyondCapacity) {
  TraceRecorder trace(/*max_events=*/8);
  for (SimTime t = 0; t < 20; ++t) trace.record(event_at(t));
  EXPECT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.dropped(), 12);
  EXPECT_EQ(trace.capacity(), 8u);
  // The stored prefix is the first 8 events, untouched by the drops.
  const std::vector<Event> events = trace.snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.back().time_us, 7);
}

TEST(TraceRecorder, GrowsAcrossChunksWithoutLoss) {
  const std::size_t n = TraceRecorder::kChunkEvents * 3 + 17;
  TraceRecorder trace;
  for (std::size_t i = 0; i < n; ++i) {
    trace.record(event_at(static_cast<SimTime>(i)));
  }
  EXPECT_EQ(trace.size(), n);
  const std::vector<Event> events = trace.snapshot();
  ASSERT_EQ(events.size(), n);
  EXPECT_EQ(events.front().time_us, 0);
  EXPECT_EQ(events.back().time_us, static_cast<SimTime>(n - 1));
}

TEST(TraceRecorder, ClearResetsEverything) {
  TraceRecorder trace(/*max_events=*/4);
  for (SimTime t = 0; t < 9; ++t) trace.record(event_at(t));
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.dropped(), 0);
  trace.record(event_at(1));
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Metrics, CountersCreateOnFirstUseAndAccumulate) {
  MetricsRegistry metrics;
  metrics.counter("net/bytes").add(100);
  metrics.counter("net/bytes").add(28);
  EXPECT_EQ(metrics.counter_value("net/bytes"), 128);
  EXPECT_EQ(metrics.counter_value("never-touched"), 0);
}

TEST(Metrics, HistogramTracksShapeAndBounds) {
  MetricsRegistry metrics;
  Histogram& h = metrics.histogram("fetch/latency_us");
  for (std::int64_t v : {100, 200, 400, 800, 1600}) h.add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 3100);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 1600);
  EXPECT_GE(h.quantile(0.5), 100);
  EXPECT_LE(h.quantile(0.5), 1600);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  // Quantiles are clamped into [min, max] despite power-of-two buckets.
  EXPECT_LE(h.quantile(1.0), 1600);
  EXPECT_GE(h.quantile(0.0), 100);
}

TEST(Metrics, QuantileHelpersShareBucketUpperBoundSemantics) {
  Histogram h;
  // 100 samples: 98 fast (3 us), 2 slow (1000 us).  p50/p95 resolve in
  // the fast bucket; p99 must cross into the slow one.
  for (int i = 0; i < 98; ++i) h.add(3);
  h.add(1000);
  h.add(1000);
  EXPECT_EQ(h.p50(), h.quantile(0.50));
  EXPECT_EQ(h.p95(), h.quantile(0.95));
  EXPECT_EQ(h.p99(), h.quantile(0.99));
  // Bucket-upper-bound semantics: the answer is the exclusive upper
  // bound of the bucket where the quantile lands (clamped to the
  // observed range), so it may overstate the true quantile by < 2x but
  // never understate which bucket the tail lives in.
  EXPECT_EQ(h.p50(), 4);     // bucket [2, 4) upper bound
  EXPECT_EQ(h.p95(), 4);
  EXPECT_EQ(h.p99(), 1000);  // bucket [512, 1024) upper bound, clamped to max
}

TEST(Metrics, SummaryIncludesP99) {
  MetricsRegistry metrics;
  metrics.histogram("lat").add(50);
  std::ostringstream out;
  metrics.write_summary(out);
  EXPECT_NE(out.str().find("p99="), std::string::npos);
}

TEST(Metrics, EmptyHistogramIsWellBehaved) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Metrics, SummaryListsNamesInCreationOrder) {
  MetricsRegistry metrics;
  metrics.counter("b/second").add(2);
  metrics.counter("a/first").add(1);
  metrics.histogram("lat").add(50);
  std::ostringstream out;
  metrics.write_summary(out);
  const std::string text = out.str();
  EXPECT_LT(text.find("b/second"), text.find("a/first"));
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST(Probe, StepRebasingProducesAGlobalTimeline) {
  Probe probe;
  probe.begin_step(StepCode::kInit, 0, /*base_us=*/0);
  probe.page_fault(0, 0, 7, /*write=*/false, /*at_us=*/40);
  probe.begin_step(StepCode::kIteration, 1, /*base_us=*/1000);
  probe.page_fault(0, 0, 7, /*write=*/true, /*at_us=*/40);
  const std::vector<Event> events = probe.trace().snapshot();
  ASSERT_EQ(events.size(), 4u);  // two step markers + two faults
  EXPECT_EQ(events[1].time_us, 40);
  EXPECT_EQ(events[2].time_us, 1000);  // step marker at the new base
  EXPECT_EQ(events[3].time_us, 1040);  // same local offset, rebased
}

/// Runs the paper's workflow in miniature with an optional probe and
/// returns the per-step metrics.
std::vector<IterationMetrics> run_workflow(Probe* probe,
                                           std::int32_t des_jobs = 1) {
  const auto w = make_workload("SOR", 16);
  RuntimeConfig config;
  config.probe = probe;
  config.sched.des_jobs = des_jobs;
  ClusterRuntime runtime(*w, Placement::stretch(16, 4), config);
  std::vector<IterationMetrics> steps;
  steps.push_back(runtime.run_init());
  for (int i = 0; i < 3; ++i) steps.push_back(runtime.run_iteration());
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  steps.push_back(tracked.metrics);
  steps.push_back(runtime.run_iteration());
  return steps;
}

void expect_metrics_equal(const IterationMetrics& a,
                          const IterationMetrics& b) {
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(a.remote_misses, b.remote_misses);
  EXPECT_EQ(a.read_faults, b.read_faults);
  EXPECT_EQ(a.write_faults, b.write_faults);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.diff_bytes, b.diff_bytes);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_DOUBLE_EQ(a.load_imbalance, b.load_imbalance);
}

TEST(Probe, AttachingAProbeNeverChangesResults) {
  // The subsystem's core contract: a probed run is bit-identical to an
  // unprobed one, step by step.
  const std::vector<IterationMetrics> bare = run_workflow(nullptr);
  Probe probe;
  const std::vector<IterationMetrics> probed = run_workflow(&probe);
  ASSERT_EQ(bare.size(), probed.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    SCOPED_TRACE(i);
    expect_metrics_equal(bare[i], probed[i]);
  }
  EXPECT_GT(probe.trace().size(), 0u);
}

TEST(Probe, AttachingAProbeNeverChangesResultsUnderParallelDes) {
  // Same contract with the parallel DES engine: workers buffer probe
  // calls per node and the merge replays them in serial order, so a
  // probed run at --des-jobs 4 stays bit-identical to an unprobed one.
  const std::vector<IterationMetrics> bare =
      run_workflow(nullptr, /*des_jobs=*/4);
  Probe probe;
  const std::vector<IterationMetrics> probed =
      run_workflow(&probe, /*des_jobs=*/4);
  ASSERT_EQ(bare.size(), probed.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    SCOPED_TRACE(i);
    expect_metrics_equal(bare[i], probed[i]);
  }
  EXPECT_GT(probe.trace().size(), 0u);
}

TEST(Probe, ParallelDesEventStreamMatchesSerialOrder) {
  // Stronger than metrics identity: the recorded event *stream* — every
  // field of every event, in order — is what the deferred replay
  // promises to reproduce.  Any reordering or drop under --des-jobs
  // shows up here even if the aggregate counters happen to agree.
  Probe serial;
  run_workflow(&serial, /*des_jobs=*/1);
  for (const std::int32_t jobs : {2, 4, 8}) {
    Probe parallel;
    run_workflow(&parallel, jobs);
    const std::vector<Event> a = serial.trace().snapshot();
    const std::vector<Event> b = parallel.trace().snapshot();
    ASSERT_EQ(a.size(), b.size()) << "jobs " << jobs;
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE("jobs " + std::to_string(jobs) + " event " +
                   std::to_string(i));
      EXPECT_EQ(a[i].time_us, b[i].time_us);
      EXPECT_EQ(a[i].kind, b[i].kind);
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_EQ(a[i].thread, b[i].thread);
      EXPECT_EQ(a[i].a, b[i].a);
      EXPECT_EQ(a[i].b, b[i].b);
    }
  }
}

TEST(Probe, FetchLatencyHistogramReconcilesWithRemoteMisses) {
  // Every remote miss the runtime counts is exactly one histogram
  // sample, so the profile's latency distribution and the metrics CSV
  // can be cross-checked against each other.
  const auto w = make_workload("FFT6", 16);
  Probe probe;
  RuntimeConfig config;
  config.probe = &probe;
  ClusterRuntime runtime(*w, Placement::stretch(16, 4), config);
  runtime.run_init();
  for (int i = 0; i < 2; ++i) runtime.run_iteration();
  runtime.run_tracked_iteration();

  const Histogram* latency = probe.metrics().find_histogram("fetch/latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), runtime.totals().remote_misses);
  EXPECT_EQ(probe.metrics().counter_value("fetch/remote"),
            runtime.totals().remote_misses);
  EXPECT_GT(latency->count(), 0);
  EXPECT_GT(latency->min(), 0);
}

TEST(Probe, NetworkCountersMatchNetworkTotals) {
  const auto w = make_workload("SOR", 16);
  Probe probe;
  RuntimeConfig config;
  config.probe = &probe;
  ClusterRuntime runtime(*w, Placement::stretch(16, 4), config);
  runtime.run_init();
  runtime.run_iteration();
  EXPECT_EQ(probe.metrics().counter_value("net/messages"),
            runtime.network().totals().messages);
  EXPECT_EQ(probe.metrics().counter_value("net/bytes_total"),
            runtime.network().totals().total_bytes);
}

TEST(Probe, MigrationEventsCoverEveryMovedThread) {
  const auto w = make_workload("SOR", 16);
  Probe probe;
  RuntimeConfig config;
  config.probe = &probe;
  ClusterRuntime runtime(*w, Placement::stretch(16, 4), config);
  runtime.run_init();
  runtime.run_iteration();
  // Reverse the stretch placement: every thread changes node.
  std::vector<NodeId> nodes(16);
  for (std::size_t t = 0; t < 16; ++t) {
    nodes[t] = static_cast<NodeId>(3 - static_cast<NodeId>(t) / 4);
  }
  runtime.migrate_to(Placement(nodes, 4));
  EXPECT_EQ(probe.metrics().counter_value("migration/threads"), 16);
  std::int64_t migration_events = 0;
  probe.trace().for_each([&](const Event& e) {
    if (e.kind == EventKind::kMigration) migration_events += 1;
  });
  EXPECT_EQ(migration_events, 16);
}

}  // namespace
}  // namespace actrack::obs
