// Determinism conformance suite for the parallel DES path.
//
// The contract under test: a trial executed with sched.des_jobs = N is
// bit-identical to the serial golden reference for every N — same
// IterationMetrics at every step, same DsmStats, same NetCounters, same
// tracking bitmaps.  The matrix crosses every tier-1 workload with
// {lrc, sc} x {link on/off} x {fault plan on/off}.  Since the
// conflict-component engine landed, SC, lock-bearing and link-enabled
// phases all execute on the worker pool (conflicting nodes share a
// component that runs the serial engine verbatim; disjoint components
// run concurrently), so every fault-free cell pins the parallel engine
// itself; only fault-plan cells still take the serial fallback, and
// the eligibility counters are asserted to say so.
//
// The window-boundary test pins the strict-inequality delivery rule: a
// remote-fetch wake landing *exactly* on the node's clock is delivered
// after the runnable thread, not before (WakeEvent total order and the
// `top.time < clock` comparison in scheduler.cpp).  A one-microsecond
// sweep of a competing thread's compute time walks the wake across the
// decision boundary and asserts serial/parallel identity on both sides
// and at the crossing itself.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "fault/plan.hpp"
#include "runtime/cluster_runtime.hpp"
#include "runtime/passive.hpp"

namespace actrack {
namespace {

constexpr std::int32_t kThreads = 16;
constexpr NodeId kNodes = 4;

/// Everything a trial can observe, captured after a scripted run.
struct RunOutput {
  std::vector<IterationMetrics> steps;
  DsmStats dsm;
  NetCounters net;
  std::int64_t tracking_faults = 0;
  std::int64_t tracking_coherence = 0;
  std::vector<DynamicBitset> bitmaps;
};

/// Init, two measured iterations, the tracked iteration, one more
/// measured iteration — enough to cross several sync epochs and to run
/// both the phase engine and the tracked engine.
RunOutput scripted_run(const Workload& workload, RuntimeConfig config,
                       std::int32_t des_jobs) {
  config.sched.des_jobs = des_jobs;
  ClusterRuntime runtime(workload,
                         Placement::stretch(workload.num_threads(), kNodes),
                         config);
  RunOutput out;
  out.steps.push_back(runtime.run_init());
  out.steps.push_back(runtime.run_iteration());
  out.steps.push_back(runtime.run_iteration());
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  out.steps.push_back(tracked.metrics);
  out.tracking_faults = tracked.tracking.tracking_faults;
  out.tracking_coherence = tracked.tracking.coherence_faults;
  out.bitmaps = tracked.tracking.access_bitmaps;
  out.steps.push_back(runtime.run_iteration());
  out.dsm = runtime.dsm().stats();
  out.net = runtime.network().totals();
  return out;
}

void expect_identical(const RunOutput& serial, const RunOutput& parallel,
                      const std::string& label) {
  ASSERT_EQ(serial.steps.size(), parallel.steps.size()) << label;
  for (std::size_t i = 0; i < serial.steps.size(); ++i) {
    SCOPED_TRACE(label + " step " + std::to_string(i));
    const IterationMetrics& a = serial.steps[i];
    const IterationMetrics& b = parallel.steps[i];
    EXPECT_EQ(a.elapsed_us, b.elapsed_us);
    EXPECT_EQ(a.remote_misses, b.remote_misses);
    EXPECT_EQ(a.read_faults, b.read_faults);
    EXPECT_EQ(a.write_faults, b.write_faults);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.diff_bytes, b.diff_bytes);
    EXPECT_EQ(a.control_bytes, b.control_bytes);
    EXPECT_EQ(a.stack_bytes, b.stack_bytes);
    EXPECT_EQ(a.gc_runs, b.gc_runs);
    EXPECT_EQ(a.link_frames, b.link_frames);
    EXPECT_EQ(a.link_retransmits, b.link_retransmits);
    EXPECT_EQ(a.link_bytes, b.link_bytes);
    EXPECT_EQ(a.link_stall_us, b.link_stall_us);
    EXPECT_DOUBLE_EQ(a.load_imbalance, b.load_imbalance);
  }
  SCOPED_TRACE(label);
  EXPECT_EQ(serial.dsm.read_faults, parallel.dsm.read_faults);
  EXPECT_EQ(serial.dsm.write_faults, parallel.dsm.write_faults);
  EXPECT_EQ(serial.dsm.remote_misses, parallel.dsm.remote_misses);
  EXPECT_EQ(serial.dsm.diff_fetches, parallel.dsm.diff_fetches);
  EXPECT_EQ(serial.dsm.full_page_fetches, parallel.dsm.full_page_fetches);
  EXPECT_EQ(serial.dsm.diffs_created, parallel.dsm.diffs_created);
  EXPECT_EQ(serial.dsm.invalidations, parallel.dsm.invalidations);
  EXPECT_EQ(serial.dsm.gc_runs, parallel.dsm.gc_runs);
  EXPECT_EQ(serial.dsm.gc_invalidations, parallel.dsm.gc_invalidations);
  EXPECT_EQ(serial.dsm.ownership_transfers, parallel.dsm.ownership_transfers);
  EXPECT_EQ(serial.dsm.delta_stalls, parallel.dsm.delta_stalls);
  EXPECT_EQ(serial.dsm.fetch_retries, parallel.dsm.fetch_retries);
  EXPECT_EQ(serial.dsm.notices_recovered, parallel.dsm.notices_recovered);
  EXPECT_EQ(serial.net.messages, parallel.net.messages);
  EXPECT_EQ(serial.net.total_bytes, parallel.net.total_bytes);
  EXPECT_EQ(serial.net.diff_bytes, parallel.net.diff_bytes);
  EXPECT_EQ(serial.net.page_bytes, parallel.net.page_bytes);
  EXPECT_EQ(serial.net.control_bytes, parallel.net.control_bytes);
  EXPECT_EQ(serial.net.stack_bytes, parallel.net.stack_bytes);
  EXPECT_EQ(serial.tracking_faults, parallel.tracking_faults);
  EXPECT_EQ(serial.tracking_coherence, parallel.tracking_coherence);
  ASSERT_EQ(serial.bitmaps.size(), parallel.bitmaps.size());
  for (std::size_t t = 0; t < serial.bitmaps.size(); ++t) {
    EXPECT_TRUE(serial.bitmaps[t] == parallel.bitmaps[t])
        << label << " bitmap of thread " << t;
  }
}

/// Eligibility-counter contract for one run.  The counters are *meant*
/// to differ between the serial reference and a parallel run (that is
/// their whole point), so they stay out of expect_identical and get
/// their own check: every step ran phases, the split sums to the
/// total, and the split is all-or-nothing with the expected reason —
/// kNone means every phase ran on the worker pool, anything else means
/// every phase took the serial fallback for that reason.
void expect_eligibility(const RunOutput& out, SerialReason reason,
                        const std::string& label) {
  for (std::size_t i = 0; i < out.steps.size(); ++i) {
    SCOPED_TRACE(label + " eligibility, step " + std::to_string(i));
    const IterationMetrics& m = out.steps[i];
    EXPECT_GT(m.des_phases_total, 0);
    EXPECT_EQ(m.des_phases_parallel + m.des_phases_serial,
              m.des_phases_total);
    if (reason == SerialReason::kNone) {
      EXPECT_EQ(m.des_phases_serial, 0);
    } else {
      EXPECT_EQ(m.des_phases_parallel, 0);
    }
    EXPECT_EQ(m.des_serial_reason, reason);
  }
}

/// One cell of the {consistency} x {link} x {fault} grid.
struct Variant {
  const char* label;
  bool sc;
  bool link;
  bool fault;
};

constexpr Variant kVariants[] = {
    {"lrc", false, false, false},
    {"sc", true, false, false},
    {"lrc+link", false, true, false},
    {"sc+link", true, true, false},
    {"lrc+fault", false, false, true},
    {"sc+fault", true, false, true},
    {"lrc+link+fault", false, true, true},
    {"sc+link+fault", true, true, true},
};

RuntimeConfig config_for(const Variant& variant) {
  RuntimeConfig config;
  if (variant.sc) {
    config.dsm.model = ConsistencyModel::kSequentialSingleWriter;
  }
  config.cost.link.enabled = variant.link;
  if (variant.fault) {
    config.fault = fault::make_plan(fault::FaultClass::kMixed, kNodes);
  }
  return config;
}

class ParallelDesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelDesTest, BitIdenticalAtAnyJobCount) {
  const std::unique_ptr<Workload> workload =
      make_workload(GetParam(), kThreads);
  for (const Variant& variant : kVariants) {
    const RuntimeConfig config = config_for(variant);
    const RunOutput serial = scripted_run(*workload, config, 1);
    expect_eligibility(serial, SerialReason::kSingleWorker,
                       GetParam() + "/" + variant.label + "/jobs1");
    for (const std::int32_t jobs : {2, 4, 8, 16}) {
      const std::string label = GetParam() + "/" + variant.label + "/jobs" +
                                std::to_string(jobs);
      const RunOutput parallel = scripted_run(*workload, config, jobs);
      expect_identical(serial, parallel, label);
      expect_eligibility(parallel,
                         variant.fault ? SerialReason::kFaultInjector
                                       : SerialReason::kNone,
                         label);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ParallelDesTest,
    ::testing::ValuesIn(all_workload_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(ParallelDesGc, GcChurnStaysIdentical) {
  const std::unique_ptr<Workload> workload = make_workload("Water", kThreads);
  RuntimeConfig config;
  config.dsm.gc_enabled = true;
  config.dsm.gc_threshold_bytes = 4096;
  const RunOutput serial = scripted_run(*workload, config, 1);
  for (const std::int32_t jobs : {2, 4, 8, 16}) {
    expect_identical(serial, scripted_run(*workload, config, jobs),
                     "Water+gc/jobs" + std::to_string(jobs));
  }
}

// Locks are the whole reason the component engine exists: Water and
// Barnes take them every iteration, so their fault-free cells in the
// matrix above exercise lock-chain partitioning.  Pin that coverage
// directly — if a workload refactor ever made these apps lock-free,
// the matrix would silently stop testing the lock path — and assert
// that the lock-bearing phases really ran on the worker pool rather
// than quietly regressing to the serial fallback.
TEST(ParallelDesLocks, LockBearingPhasesRunOnTheWorkerPool) {
  for (const char* name : {"Water", "Barnes"}) {
    const std::unique_ptr<Workload> workload = make_workload(name, kThreads);
    RuntimeConfig config;
    config.sched.des_jobs = 8;
    ClusterRuntime runtime(
        *workload, Placement::stretch(workload->num_threads(), kNodes),
        config);
    runtime.run_init();
    IterationResult detail;
    runtime.run_iteration(&detail);
    SCOPED_TRACE(name);
    EXPECT_GT(detail.lock_acquires, 0);
    EXPECT_GT(detail.des_phases_total, 0);
    EXPECT_EQ(detail.des_phases_serial, 0);
    EXPECT_EQ(detail.des_phases_parallel, detail.des_phases_total);
    EXPECT_EQ(detail.des_serial_reason, SerialReason::kNone);
  }
}

TEST(ParallelDesGc, VectorClockCausalityStaysIdentical) {
  const std::unique_ptr<Workload> workload = make_workload("Ocean", kThreads);
  RuntimeConfig config;
  config.dsm.causality = CausalityMode::kVectorClock;
  const RunOutput serial = scripted_run(*workload, config, 1);
  expect_identical(serial, scripted_run(*workload, config, 4), "Ocean+vc");
}

// The remote-miss observer is the one deferred observer stream without
// a dedicated probe test: passive tracking's whole experiment is built
// on it, so identical PassiveRound sequences pin the replay path.
TEST(ParallelDesMissObserver, PassiveTrackingStaysIdentical) {
  const std::unique_ptr<Workload> workload = make_workload("SOR", kThreads);
  auto rounds_at = [&](std::int32_t des_jobs) {
    RuntimeConfig config;
    config.sched.des_jobs = des_jobs;
    PassiveTrackingExperiment experiment(*workload, kNodes, config);
    return experiment.run(4);
  };
  const std::vector<PassiveRound> serial = rounds_at(1);
  for (const std::int32_t jobs : {2, 8}) {
    const std::vector<PassiveRound> parallel = rounds_at(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(i) + " jobs " +
                   std::to_string(jobs));
      EXPECT_EQ(serial[i].round, parallel[i].round);
      EXPECT_DOUBLE_EQ(serial[i].completeness, parallel[i].completeness);
      EXPECT_EQ(serial[i].threads_moved, parallel[i].threads_moved);
      EXPECT_EQ(serial[i].remote_misses, parallel[i].remote_misses);
    }
  }
}

// -- window boundary ---------------------------------------------------
//
// Node 0 runs three threads: thread 0 faults remotely and switches away
// (wake at W), thread 1 computes C us, thread 2 faults remotely.  After
// thread 1 finishes, the scheduler compares W against node 0's clock
// (affine in C): W < clock resumes thread 0 before thread 2 runs, so
// thread 2's fetch overlaps a runnable thread and context-switches;
// W >= clock — including W == clock exactly, the boundary — runs
// thread 2 first, whose fetch then stalls.  Sweeping C by 1 us walks W
// across the boundary; identity must hold at every value, and both
// regimes must appear (proving the sweep actually crossed it).
TEST(ParallelDesWindowBoundary, WakeOnEpochEdgeIsBitIdentical) {
  IterationTrace trace;
  trace.num_threads = 4;
  Phase warm;  // thread 3 (node 1) writes the pages the others will miss
  warm.threads.resize(4);
  Segment writes;
  writes.accesses.push_back({5, AccessKind::kWrite, 512});
  writes.accesses.push_back({7, AccessKind::kWrite, 512});
  warm.threads[3].segments.push_back(writes);
  trace.phases.push_back(warm);

  const Placement placement(std::vector<NodeId>{0, 0, 0, 1}, 2);
  std::set<std::int64_t> switch_counts;
  for (SimTime c = 0; c <= 500; c += 1) {
    Phase race;
    race.threads.resize(4);
    Segment remote5;
    remote5.accesses.push_back({5, AccessKind::kRead, 0});
    race.threads[0].segments.push_back(remote5);
    Segment compute;
    compute.compute_us = c;
    race.threads[1].segments.push_back(compute);
    Segment remote7;
    remote7.accesses.push_back({7, AccessKind::kRead, 0});
    race.threads[2].segments.push_back(remote7);

    IterationTrace sweep = trace;
    sweep.phases.push_back(race);

    auto run = [&](std::int32_t des_jobs) {
      NetworkModel net(2, CostModel{});
      DsmSystem dsm(16, 2, &net);
      SchedConfig config;
      config.des_jobs = des_jobs;
      ClusterScheduler sched(&dsm, &net, config);
      return sched.run_iteration(sweep, placement);
    };
    const IterationResult serial = run(1);
    const IterationResult parallel = run(8);
    SCOPED_TRACE("compute " + std::to_string(c));
    EXPECT_EQ(serial.elapsed_us, parallel.elapsed_us);
    EXPECT_EQ(serial.context_switches, parallel.context_switches);
    EXPECT_EQ(serial.lock_acquires, parallel.lock_acquires);
    ASSERT_EQ(serial.node_idle_us.size(), parallel.node_idle_us.size());
    for (std::size_t n = 0; n < serial.node_idle_us.size(); ++n) {
      EXPECT_EQ(serial.node_idle_us[n], parallel.node_idle_us[n]);
    }
    switch_counts.insert(serial.context_switches);
  }
  // Both delivery regimes occurred, so the sweep crossed the boundary
  // (the first value on the not-delivered side is the exact-tie case).
  EXPECT_EQ(switch_counts.size(), 2u) << "sweep never crossed the boundary";
}

}  // namespace
}  // namespace actrack
