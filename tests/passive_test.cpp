// Tests of passive correlation tracking (§4.1, Figure 2): remote-fault
// attribution gathers only partial information, migration rounds slowly
// reveal more, and active tracking dominates it.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "apps/workload.hpp"
#include "runtime/passive.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

TEST(PassiveTracking, CompletenessIsMonotone) {
  const auto w = make_workload("Water", 16);
  PassiveTrackingExperiment experiment(*w, 4);
  const std::vector<PassiveRound> rounds = experiment.run(6);
  ASSERT_EQ(rounds.size(), 6u);
  for (std::size_t r = 1; r < rounds.size(); ++r) {
    EXPECT_GE(rounds[r].completeness + 1e-9, rounds[r - 1].completeness);
  }
}

TEST(PassiveTracking, CompletenessBounded) {
  const auto w = make_workload("SOR", 16);
  PassiveTrackingExperiment experiment(*w, 4);
  for (const PassiveRound& round : experiment.run(5)) {
    EXPECT_GE(round.completeness, 0.0);
    EXPECT_LE(round.completeness, 1.0);
  }
}

TEST(PassiveTracking, FirstRoundIsIncompleteWithLocalSharing) {
  // The §4.1 failure mode: multiple threads per node share state, so
  // remote faults credit only the first local toucher.  With 4 threads
  // per node on an all-to-all workload, round 0 must miss most pairs.
  AllToAllWorkload w(16, 2);
  PassiveTrackingExperiment experiment(w, 4);
  const std::vector<PassiveRound> rounds = experiment.run(1);
  EXPECT_LT(rounds[0].completeness, 0.8);
  EXPECT_GT(rounds[0].completeness, 0.0);
}

TEST(PassiveTracking, MigrationRevealsNewInformation) {
  const auto w = make_workload("Water", 16);
  PassiveTrackingExperiment experiment(*w, 4);
  const std::vector<PassiveRound> rounds = experiment.run(6);
  // Some round after a migration must strictly improve on round 0.
  EXPECT_GT(rounds.back().completeness, rounds.front().completeness);
}

TEST(PassiveTracking, StaysBelowActiveTrackingOnSharedApps) {
  // Figure 2's headline: passive tracking fails to obtain complete
  // information for all but the simplest applications, while active
  // tracking is exact by construction (tracking_test covers that).
  const auto w = make_workload("Water", 16);
  PassiveTrackingExperiment experiment(*w, 4);
  const std::vector<PassiveRound> rounds = experiment.run(6);
  EXPECT_LT(rounds.back().completeness, 1.0);
}

TEST(PassiveTracking, NearCompleteForSor) {
  // "the passive tracking only comes close to obtaining complete
  // information for SOR, by far the least complex of our applications."
  const auto w = make_workload("SOR", 16);
  PassiveTrackingExperiment experiment(*w, 4);
  const std::vector<PassiveRound> rounds = experiment.run(8);
  EXPECT_GT(rounds.back().completeness, 0.55);
}

TEST(PassiveTracking, ObservedIsSubsetOfTruth) {
  const auto w = make_workload("LU1k", 16);
  PassiveTrackingExperiment experiment(*w, 4);
  (void)experiment.run(3);
  // Every observed (thread, page) pair must have been genuinely touched
  // at some point: faults cannot invent affinity.  (Oracle accumulated
  // over all executed iterations; LU's per-step working sets shift, so
  // compare against the union over the steps that ran: 4 iterations
  // after init.)
  std::vector<DynamicBitset> truth(
      static_cast<std::size_t>(w->num_threads()),
      DynamicBitset(w->num_pages()));
  for (std::int32_t iter = 0; iter <= 4; ++iter) {
    const auto touched =
        pages_touched_per_thread(w->iteration(iter), w->num_pages());
    for (std::size_t t = 0; t < truth.size(); ++t) truth[t].merge(touched[t]);
  }
  const auto& observed = experiment.observed();
  for (std::size_t t = 0; t < observed.size(); ++t) {
    EXPECT_EQ(observed[t].intersection_count(truth[t]), observed[t].count())
        << "thread " << t << " credited with pages it never touched";
  }
}

TEST(PassiveTracking, RecordsMigrationActivity) {
  const auto w = make_workload("Water", 16);
  PassiveTrackingExperiment experiment(*w, 4);
  const std::vector<PassiveRound> rounds = experiment.run(4);
  std::int32_t total_moved = 0;
  for (const PassiveRound& round : rounds) total_moved += round.threads_moved;
  // The partial matrix differs from stretch, so at least one migration
  // round must occur (thread ping-ponging, §4.1).
  EXPECT_GT(total_moved, 0);
}

}  // namespace
}  // namespace actrack
