// Equivalence suites for the incremental perf kernels: whatever the
// fast paths do, they must be bit-identical to the naive formulations
// they replace.  IncrementalCorrelation == from_bitmaps, gain-table
// refinement == the historical rescan, parallel multi-start == serial
// min-cost, scratch accessors == their allocating twins.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "apps/synthetic.hpp"
#include "apps/workload.hpp"
#include "common/bitset.hpp"
#include "common/rng.hpp"
#include "correlation/incremental.hpp"
#include "correlation/matrix.hpp"
#include "exp/parallel_placement.hpp"
#include "exp/runner.hpp"
#include "placement/heuristics.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack {
namespace {

void expect_same_matrix(const CorrelationMatrix& a,
                        const CorrelationMatrix& b) {
  ASSERT_EQ(a.num_threads(), b.num_threads());
  for (ThreadId i = 0; i < a.num_threads(); ++i) {
    const auto row_a = a.cells(i);
    const auto row_b = b.cells(i);
    for (ThreadId j = 0; j < a.num_threads(); ++j) {
      ASSERT_EQ(row_a[static_cast<std::size_t>(j)],
                row_b[static_cast<std::size_t>(j)])
          << "entry (" << i << ", " << j << ")";
    }
  }
}

CorrelationMatrix random_matrix(Rng& rng, std::int32_t n,
                                std::int64_t max_value) {
  CorrelationMatrix m(n);
  for (ThreadId i = 0; i < n; ++i) {
    for (ThreadId j = i + 1; j < n; ++j) {
      m.set(i, j, rng.uniform(max_value));
    }
  }
  return m;
}

// ---------------------------------------------------------------------
// IncrementalCorrelation == CorrelationMatrix::from_bitmaps, exactly,
// across epochs of random word-level churn.

class IncrementalCorrelationProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalCorrelationProperty, MatchesFullRebuildAcrossEpochs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 97);
  const std::int32_t threads = 10;
  const std::int64_t pages = 300;  // several words, partial last word
  std::vector<DynamicBitset> bitmaps(static_cast<std::size_t>(threads),
                                     DynamicBitset(pages));
  IncrementalCorrelation inc;
  EXPECT_FALSE(inc.primed());

  for (int epoch = 0; epoch < 8; ++epoch) {
    // Flip a random number of bits on a random subset of threads —
    // including epochs where nothing changes at all.
    const std::int64_t flips = rng.uniform(40);
    for (std::int64_t f = 0; f < flips; ++f) {
      auto& bm = bitmaps[static_cast<std::size_t>(rng.uniform(threads))];
      const std::int64_t page = rng.uniform(pages);
      if (bm.test(page)) {
        bm.reset(page);
      } else {
        bm.set(page);
      }
    }
    // Equality must hold whichever path update() picks — patching or
    // the churn-triggered rebuild fallback.
    const CorrelationMatrix& fast = inc.update(bitmaps);
    expect_same_matrix(fast, CorrelationMatrix::from_bitmaps(bitmaps));
    EXPECT_TRUE(inc.primed());
    if (epoch == 0) {
      EXPECT_TRUE(inc.last_was_rebuild());
    } else if (flips == 0) {
      EXPECT_FALSE(inc.last_was_rebuild());
      EXPECT_EQ(inc.last_dirty_words(), 0);
    }
  }
}

TEST_P(IncrementalCorrelationProperty, ShapeChangeForcesExactRebuild) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 31);
  IncrementalCorrelation inc;
  for (const std::int64_t pages : {64L, 200L, 64L}) {
    std::vector<DynamicBitset> bitmaps(6, DynamicBitset(pages));
    for (auto& bm : bitmaps) {
      for (std::int64_t p = 0; p < pages; ++p) {
        if (rng.uniform(3) == 0) bm.set(p);
      }
    }
    expect_same_matrix(inc.update(bitmaps),
                       CorrelationMatrix::from_bitmaps(bitmaps));
    EXPECT_TRUE(inc.last_was_rebuild());
  }
  // invalidate() drops the snapshot but the next update is still exact.
  std::vector<DynamicBitset> bitmaps(6, DynamicBitset(64));
  bitmaps[0].set(3);
  bitmaps[1].set(3);
  inc.invalidate();
  expect_same_matrix(inc.update(bitmaps),
                     CorrelationMatrix::from_bitmaps(bitmaps));
  EXPECT_TRUE(inc.last_was_rebuild());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalCorrelationProperty,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// The same equivalence over real tracked-iteration bitmaps, under both
// consistency protocols: accumulate observed pages across iterations
// (the passive/adaptive usage pattern) and re-derive the matrix each
// round.

class TrackedBitmapProperty
    : public ::testing::TestWithParam<std::tuple<int, ConsistencyModel>> {};

TEST_P(TrackedBitmapProperty, IncrementalMatchesRebuildOnTrackedBitmaps) {
  const auto [seed, model] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 5);
  const std::unique_ptr<Workload> w =
      make_workload(seed % 2 == 0 ? "SOR" : "Water", 12);
  RuntimeConfig config;
  config.dsm.model = model;
  ClusterRuntime runtime(*w, random_placement(rng, 12, 3, 2), config);
  runtime.run_init();

  std::vector<DynamicBitset> accumulated(
      12, DynamicBitset(w->num_pages()));
  IncrementalCorrelation inc;
  for (int round = 0; round < 3; ++round) {
    const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
    for (std::size_t t = 0; t < accumulated.size(); ++t) {
      accumulated[t].merge(tracked.tracking.access_bitmaps[t]);
    }
    expect_same_matrix(inc.update(accumulated),
                       CorrelationMatrix::from_bitmaps(accumulated));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProtocols, TrackedBitmapProperty,
    ::testing::Combine(
        ::testing::Range(0, 4),
        ::testing::Values(ConsistencyModel::kLazyReleaseMultiWriter,
                          ConsistencyModel::kSequentialSingleWriter)));

// ---------------------------------------------------------------------
// IncrementalCutCost tracks matrix.cut_cost exactly through arbitrary
// move/swap sequences, and its deltas predict the ground truth.

class CutCostProperty : public ::testing::TestWithParam<int> {};

TEST_P(CutCostProperty, DeltasAndCostMatchGroundTruth) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 41);
  const std::int32_t n = 14;
  const NodeId nodes = 4;
  const CorrelationMatrix m = random_matrix(rng, n, 60);
  std::vector<NodeId> assignment;
  for (ThreadId t = 0; t < n; ++t) {
    assignment.push_back(static_cast<NodeId>(rng.uniform(nodes)));
  }

  IncrementalCutCost cut;
  cut.reset(m, assignment, nodes);
  EXPECT_EQ(cut.cost(), m.cut_cost(assignment));

  // Affinity tables against the brute-force definition.
  for (ThreadId t = 0; t < n; ++t) {
    const auto row = cut.affinity_row(t);
    for (NodeId node = 0; node < nodes; ++node) {
      std::int64_t expected = 0;
      for (ThreadId u = 0; u < n; ++u) {
        if (u != t && assignment[static_cast<std::size_t>(u)] == node) {
          expected += m.at(t, u);
        }
      }
      EXPECT_EQ(cut.affinity(t, node), expected);
      EXPECT_EQ(row[static_cast<std::size_t>(node)], expected);
    }
  }

  for (int step = 0; step < 60; ++step) {
    if (rng.uniform(2) == 0) {
      const ThreadId t = static_cast<ThreadId>(rng.uniform(n));
      const NodeId to = static_cast<NodeId>(rng.uniform(nodes));
      std::vector<NodeId> after = assignment;
      after[static_cast<std::size_t>(t)] = to;
      EXPECT_EQ(cut.move_delta(t, to),
                m.cut_cost(after) - m.cut_cost(assignment));
      cut.apply_move(t, to);
      assignment = after;
    } else {
      const ThreadId a = static_cast<ThreadId>(rng.uniform(n));
      const ThreadId b = static_cast<ThreadId>(rng.uniform(n));
      if (a == b) continue;
      std::vector<NodeId> after = assignment;
      std::swap(after[static_cast<std::size_t>(a)],
                after[static_cast<std::size_t>(b)]);
      EXPECT_EQ(cut.swap_delta(a, b),
                m.cut_cost(after) - m.cut_cost(assignment));
      cut.apply_swap(a, b);
      assignment = after;
    }
    ASSERT_EQ(cut.cost(), m.cut_cost(assignment)) << "step " << step;
    for (ThreadId t = 0; t < n; ++t) {
      EXPECT_EQ(cut.node_of(t), assignment[static_cast<std::size_t>(t)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutCostProperty, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Gain-table refinement == the historical rescan implementation, and
// the parallel multi-start == the serial min-cost, bit for bit.

class RefineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RefineEquivalence, GainTableRefineMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 257 + 19);
  for (const NodeId nodes : {2, 3, 5}) {
    const std::int32_t n = 12 + GetParam() % 5;
    const CorrelationMatrix m = random_matrix(rng, n, 80);
    const Placement start = balanced_random_placement(rng, n, nodes);
    const Placement fast = refine_by_swaps(m, start);
    const Placement reference = refine_by_swaps_reference(m, start);
    EXPECT_EQ(fast, reference);
    // The scratch overload converges to the same fixpoint.
    IncrementalCutCost scratch;
    std::vector<NodeId> assignment = start.node_of_thread();
    refine_swaps_in_place(m, assignment, nodes, scratch);
    EXPECT_EQ(assignment, fast.node_of_thread());
  }
}

TEST_P(RefineEquivalence, ParallelMinCostMatchesSerial) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 8191 + 29);
  const CorrelationMatrix m = random_matrix(rng, 16, 50);
  MinCostOptions options;
  options.seed = 0x5EEDu + static_cast<std::uint64_t>(GetParam());
  const Placement serial = min_cost_placement(m, 4, options);
  for (const std::int32_t jobs : {1, 4}) {
    exp::RunnerOptions ro;
    ro.jobs = jobs;
    const exp::TrialRunner runner(ro);
    EXPECT_EQ(exp::parallel_min_cost_placement(runner, m, 4, options),
              serial);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineEquivalence, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Satellite accessors: matrix diagonal stores, row spans, the
// threads_by_node scratch overload, and the exp task fan-out.

TEST(MatrixAccessors, DiagonalSetStoresOnce) {
  CorrelationMatrix m(4);
  m.set(1, 1, 7);
  EXPECT_EQ(m.at(1, 1), 7);
  m.set(1, 2, 3);
  EXPECT_EQ(m.at(2, 1), 3);
  // The diagonal does not contribute to pair totals or cut costs.
  EXPECT_EQ(m.total_pair_correlation(), 3);
  EXPECT_EQ(m.cut_cost({0, 1, 2, 0}), 3);
}

TEST(MatrixAccessors, CellsSpansMirrorAt) {
  Rng rng(123);
  const CorrelationMatrix m = random_matrix(rng, 7, 40);
  for (ThreadId i = 0; i < 7; ++i) {
    const auto row = m.cells(i);
    ASSERT_EQ(row.size(), 7u);
    for (ThreadId j = 0; j < 7; ++j) {
      EXPECT_EQ(row[static_cast<std::size_t>(j)], m.at(i, j));
    }
  }
}

TEST(PlacementAccessors, ThreadsByNodeScratchMatchesAllocating) {
  Rng rng(99);
  std::vector<std::vector<ThreadId>> scratch;
  // Reuse the same scratch across placements of different shapes.
  for (const NodeId nodes : {4, 2, 5}) {
    const Placement p = random_placement(rng, 13, nodes, 1);
    p.threads_by_node(scratch);
    EXPECT_EQ(scratch, p.threads_by_node());
  }
}

TEST(RunTasks, CoversEveryIndexOnceAndPropagatesErrors) {
  for (const std::int32_t jobs : {1, 3}) {
    exp::RunnerOptions ro;
    ro.jobs = jobs;
    const exp::TrialRunner runner(ro);
    std::vector<std::atomic<int>> hits(17);
    runner.run_tasks(17, [&hits](std::int32_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_THROW(
        runner.run_tasks(5,
                         [](std::int32_t i) {
                           if (i == 3) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
  }
}

}  // namespace
}  // namespace actrack
