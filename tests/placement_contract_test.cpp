// Size-contract regression tests (satellite of the scaling-axis PR):
// every cut-cost / placement entry point must CHECK that an assignment
// covers exactly num_threads() threads instead of reading out of bounds
// or silently truncating.  ACTRACK_CHECK throws std::logic_error.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "correlation/matrix.hpp"
#include "correlation/sparse.hpp"
#include "correlation/view.hpp"
#include "placement/heuristics.hpp"
#include "placement/hierarchical.hpp"
#include "placement/placement.hpp"

namespace actrack {
namespace {

std::vector<DynamicBitset> ring_bitmaps(std::int32_t threads,
                                        std::int32_t pages_per_thread = 3) {
  std::vector<DynamicBitset> maps(
      static_cast<std::size_t>(threads),
      DynamicBitset(threads * pages_per_thread));
  for (std::int32_t t = 0; t < threads; ++t) {
    for (std::int32_t p = 0; p < pages_per_thread; ++p) {
      maps[static_cast<std::size_t>(t)].set(t * pages_per_thread + p);
      // Shared page with the next thread: nonzero off-diagonal band.
      maps[static_cast<std::size_t>((t + 1) % threads)].set(
          t * pages_per_thread + p);
    }
  }
  return maps;
}

TEST(PlacementContract, DenseCutCostRejectsWrongSizeAssignment) {
  const CorrelationMatrix m = CorrelationMatrix::from_bitmaps(ring_bitmaps(8));
  EXPECT_THROW((void)m.cut_cost(std::vector<NodeId>(7, 0)), std::logic_error);
  EXPECT_THROW((void)m.cut_cost(std::vector<NodeId>(9, 0)), std::logic_error);
  EXPECT_NO_THROW((void)m.cut_cost(std::vector<NodeId>(8, 0)));
}

TEST(PlacementContract, SparseCutCostRejectsWrongSizeAssignment) {
  const SparseCorrelation s = SparseCorrelation::from_bitmaps(ring_bitmaps(8));
  EXPECT_THROW((void)s.cut_cost(std::vector<NodeId>(7, 0)), std::logic_error);
  EXPECT_THROW((void)s.cut_cost(std::vector<NodeId>(9, 0)), std::logic_error);
  EXPECT_NO_THROW((void)s.cut_cost(std::vector<NodeId>(8, 0)));
}

TEST(PlacementContract, ViewCutCostResetRejectsWrongSizeAssignment) {
  const CorrelationMatrix m = CorrelationMatrix::from_bitmaps(ring_bitmaps(8));
  ViewCutCost scratch;
  EXPECT_THROW(scratch.reset(m, std::vector<NodeId>(6, 0), 2),
               std::logic_error);
  EXPECT_NO_THROW(scratch.reset(m, std::vector<NodeId>(8, 0), 2));
}

TEST(PlacementContract, RefineBySwapsRejectsMismatchedPlacement) {
  const CorrelationMatrix m = CorrelationMatrix::from_bitmaps(ring_bitmaps(8));
  EXPECT_THROW((void)refine_by_swaps(m, Placement::stretch(6, 2)),
               std::logic_error);
  EXPECT_NO_THROW((void)refine_by_swaps(m, Placement::stretch(8, 2)));
}

TEST(PlacementContract, RefinedSeedsMustEachCoverEveryThread) {
  const CorrelationMatrix m = CorrelationMatrix::from_bitmaps(ring_bitmaps(8));
  Rng rng(1);
  std::vector<std::vector<NodeId>> seeds = {
      Placement::stretch(8, 2).node_of_thread(),
      std::vector<NodeId>(5, 0),  // short seed must be rejected
  };
  EXPECT_THROW(
      (void)min_cost_from_refined_seeds(m, 2, MinCostOptions{}, rng, seeds),
      std::logic_error);
  seeds[1] = Placement::stretch(8, 2).node_of_thread();
  EXPECT_NO_THROW(
      (void)min_cost_from_refined_seeds(m, 2, MinCostOptions{}, rng, seeds));
}

TEST(PlacementContract, HierarchicalRejectsMoreNodesThanThreads) {
  const SparseCorrelation s = SparseCorrelation::from_bitmaps(ring_bitmaps(8));
  EXPECT_THROW((void)hierarchical_min_cost_placement(s, 9), std::logic_error);
  EXPECT_THROW((void)hierarchical_min_cost_placement(s, 0), std::logic_error);
  EXPECT_NO_THROW((void)hierarchical_min_cost_placement(s, 4));
}

TEST(PlacementContract, BalancedNodeSizesValidatesShape) {
  EXPECT_THROW((void)balanced_node_sizes(4, 5), std::logic_error);
  EXPECT_THROW((void)balanced_node_sizes(4, 0), std::logic_error);
  const std::vector<std::int32_t> sizes = balanced_node_sizes(10, 4);
  EXPECT_EQ(sizes, (std::vector<std::int32_t>{3, 3, 2, 2}));
}

}  // namespace
}  // namespace actrack
