#include "placement/placement.hpp"

#include <gtest/gtest.h>

namespace actrack {
namespace {

TEST(PlacementTest, StretchDividesEvenly) {
  const Placement p = Placement::stretch(64, 8);
  EXPECT_EQ(p.num_threads(), 64);
  EXPECT_EQ(p.num_nodes(), 8);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(p.threads_on(n), 8);
  // §5.1: "the first 16 on node 0, the second 16 on node 1, ..." — the
  // assignment is contiguous and monotone.
  for (ThreadId t = 1; t < 64; ++t) {
    EXPECT_GE(p.node_of(t), p.node_of(t - 1));
  }
  EXPECT_EQ(p.node_of(0), 0);
  EXPECT_EQ(p.node_of(63), 7);
}

TEST(PlacementTest, StretchSpreadsRemainder) {
  const Placement p = Placement::stretch(10, 4);
  // 10 = 3+3+2+2.
  EXPECT_EQ(p.threads_on(0), 3);
  EXPECT_EQ(p.threads_on(1), 3);
  EXPECT_EQ(p.threads_on(2), 2);
  EXPECT_EQ(p.threads_on(3), 2);
}

TEST(PlacementTest, StretchRejectsMoreNodesThanThreads) {
  EXPECT_THROW((void)Placement::stretch(3, 4), std::logic_error);
}

TEST(PlacementTest, ConstructorValidatesNodeIds) {
  EXPECT_THROW(Placement({0, 1, 2}, 2), std::logic_error);
  EXPECT_THROW(Placement({0, -1}, 2), std::logic_error);
  EXPECT_THROW(Placement({}, 2), std::logic_error);
}

TEST(PlacementTest, ThreadsByNode) {
  const Placement p({1, 0, 1, 0}, 2);
  const auto by_node = p.threads_by_node();
  ASSERT_EQ(by_node.size(), 2u);
  EXPECT_EQ(by_node[0], (std::vector<ThreadId>{1, 3}));
  EXPECT_EQ(by_node[1], (std::vector<ThreadId>{0, 2}));
}

TEST(PlacementTest, MigrationDistance) {
  const Placement a({0, 0, 1, 1}, 2);
  const Placement b({0, 1, 1, 0}, 2);
  EXPECT_EQ(a.migration_distance(b), 2);
  EXPECT_EQ(a.migration_distance(a), 0);
  EXPECT_EQ(b.migration_distance(a), 2);  // symmetric
}

TEST(PlacementTest, MigrationDistanceRejectsSizeMismatch) {
  const Placement a({0, 1}, 2);
  const Placement b({0, 1, 0}, 2);
  EXPECT_THROW((void)a.migration_distance(b), std::logic_error);
}

TEST(PlacementTest, NodeOfBoundsChecked) {
  const Placement p({0, 1}, 2);
  EXPECT_THROW((void)p.node_of(2), std::logic_error);
  EXPECT_THROW((void)p.node_of(-1), std::logic_error);
  EXPECT_THROW((void)p.threads_on(2), std::logic_error);
}

TEST(PlacementTest, Equality) {
  const Placement a({0, 1}, 2);
  const Placement b({0, 1}, 2);
  const Placement c({1, 0}, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace actrack
