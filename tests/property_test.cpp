// Property-based suites (parameterised sweeps) over protocol and
// placement invariants that must hold for arbitrary workload shapes and
// placements — the safety net under the experiment code.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "apps/workload.hpp"
#include "placement/heuristics.hpp"
#include "placement/weighted.hpp"
#include "runtime/cluster_runtime.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

// ---------------------------------------------------------------------
// Invariants over random placements of a fixed workload.

class RandomPlacementProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlacementProperty, ProtocolInvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  RingWorkload w(12, 3, 1);
  const Placement p = random_placement(rng, 12, 3, 2);
  ClusterRuntime runtime(w, p);
  runtime.run_init();
  for (int iter = 0; iter < 3; ++iter) {
    const IterationMetrics m = runtime.run_iteration();
    // A remote miss always moves at least one message, and bytes are
    // consistent with message counts.
    if (m.remote_misses > 0) {
      EXPECT_GT(m.messages, 0);
    }
    EXPECT_GE(m.total_bytes,
              m.messages * CostModel{}.message_header_bytes);
    EXPECT_LE(m.diff_bytes, m.total_bytes);
    EXPECT_GE(m.elapsed_us, 0);
  }
}

TEST_P(RandomPlacementProperty, TrackingIsExactUnderAnyPlacement) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  PairsWithLockWorkload w(12, 2);
  const Placement p = random_placement(rng, 12, 3, 2);
  ClusterRuntime runtime(w, p);
  runtime.run_init();
  const IterationTrace reference = w.iteration(runtime.next_iteration());
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  const auto oracle = pages_touched_per_thread(reference, w.num_pages());
  for (std::size_t t = 0; t < oracle.size(); ++t) {
    EXPECT_EQ(tracked.tracking.access_bitmaps[t], oracle[t]);
  }
}

TEST_P(RandomPlacementProperty, SteadyStateMissesBoundedByCutTimesPhases) {
  // Each cross-node shared page can miss at most once per phase per
  // node in steady state for a read-sharing ring.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  RingWorkload w(12, 3, 2);
  const Placement p = random_placement(rng, 12, 3, 2);
  const CorrelationMatrix m = collect_correlations(w, 3);
  ClusterRuntime runtime(w, p);
  runtime.run_init();
  runtime.run_iteration();
  const IterationMetrics steady = runtime.run_iteration();
  const std::int64_t cut = m.cut_cost(p.node_of_thread());
  EXPECT_LE(steady.remote_misses, 2 * cut + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlacementProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Placement-quality invariants over random correlation matrices.

class HeuristicProperty : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicProperty, MinCostNeverWorseThanStretchOrRandom) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 3);
  CorrelationMatrix m(12);
  for (ThreadId i = 0; i < 12; ++i) {
    for (ThreadId j = i + 1; j < 12; ++j) {
      m.set(i, j, rng.uniform(50));
    }
  }
  const std::int64_t mincost =
      m.cut_cost(min_cost_placement(m, 3).node_of_thread());
  EXPECT_LE(mincost, m.cut_cost(Placement::stretch(12, 3).node_of_thread()));
  for (int r = 0; r < 5; ++r) {
    EXPECT_LE(mincost, m.cut_cost(
        balanced_random_placement(rng, 12, 3).node_of_thread()));
  }
}

TEST_P(HeuristicProperty, MinCostWithinOnePercentOfOptimal) {
  // §5.1's claim, verified exactly on exhaustively-solvable sizes.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 257 + 11);
  CorrelationMatrix m(9);
  for (ThreadId i = 0; i < 9; ++i) {
    for (ThreadId j = i + 1; j < 9; ++j) {
      m.set(i, j, rng.uniform(100));
    }
  }
  const auto opt = optimal_placement(m, 3);
  ASSERT_TRUE(opt.has_value());
  const std::int64_t best = m.cut_cost(opt->node_of_thread());
  const std::int64_t heur =
      m.cut_cost(min_cost_placement(m, 3).node_of_thread());
  EXPECT_LE(heur, best + best / 100 + 1);
  EXPECT_GE(heur, best);  // optimal really is a lower bound
}

TEST_P(HeuristicProperty, CutCostInvariantUnderNodeRelabelling) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 8191 + 5);
  CorrelationMatrix m(10);
  for (ThreadId i = 0; i < 10; ++i) {
    for (ThreadId j = i + 1; j < 10; ++j) m.set(i, j, rng.uniform(30));
  }
  const Placement p = balanced_random_placement(rng, 10, 2);
  std::vector<NodeId> relabelled;
  for (const NodeId n : p.node_of_thread()) relabelled.push_back(1 - n);
  EXPECT_EQ(m.cut_cost(p.node_of_thread()), m.cut_cost(relabelled));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicProperty, ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// Cross-protocol invariants: whatever the consistency model, accounting
// stays coherent and tracking stays exact.

class ProtocolProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolProperty, ScAccountingInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 19);
  RingWorkload w(12, 3, 1);
  const Placement p = random_placement(rng, 12, 3, 2);
  RuntimeConfig config;
  config.dsm.model = ConsistencyModel::kSequentialSingleWriter;
  ClusterRuntime runtime(w, p, config);
  runtime.run_init();
  for (int iter = 0; iter < 3; ++iter) {
    const IterationMetrics m = runtime.run_iteration();
    EXPECT_GE(m.elapsed_us, 0);
    EXPECT_LE(m.diff_bytes, 0 + m.total_bytes);
    EXPECT_EQ(m.gc_runs, 0);  // SC has no GC
  }
  // Ownership transfers are a subset of remote misses.
  EXPECT_LE(runtime.dsm().stats().ownership_transfers,
            runtime.dsm().stats().remote_misses);
}

TEST_P(ProtocolProperty, WeightedBudgetedPlacementsCompose) {
  // weighted populations + budget-limited refinement keep both
  // invariants simultaneously.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  CorrelationMatrix m(12);
  for (ThreadId i = 0; i < 12; ++i) {
    for (ThreadId j = i + 1; j < 12; ++j) m.set(i, j, rng.uniform(40));
  }
  const std::vector<double> speeds = {2.0, 1.0, 1.0};
  const Placement start = weighted_stretch(12, speeds);
  const Placement refined = min_cost_within_budget(m, start, 4);
  EXPECT_LE(start.migration_distance(refined), 4);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(refined.threads_on(n), start.threads_on(n));
  }
  EXPECT_LE(m.cut_cost(refined.node_of_thread()),
            m.cut_cost(start.node_of_thread()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolProperty, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Determinism across the full pipeline.

TEST(DeterminismProperty, FullPipelineIsBitStable) {
  for (int rep = 0; rep < 2; ++rep) {
    static std::int64_t first_elapsed = -1;
    static std::int64_t first_misses = -1;
    const auto w = make_workload("Water", 16);
    ClusterRuntime runtime(*w, Placement::stretch(16, 4));
    runtime.run_init();
    runtime.run_iteration();
    const IterationMetrics m = runtime.run_iteration();
    if (first_elapsed < 0) {
      first_elapsed = m.elapsed_us;
      first_misses = m.remote_misses;
    } else {
      EXPECT_EQ(m.elapsed_us, first_elapsed);
      EXPECT_EQ(m.remote_misses, first_misses);
    }
  }
}

}  // namespace
}  // namespace actrack
