#include "runtime/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace actrack {
namespace {

IterationMetrics metrics(SimTime us, std::int64_t misses,
                         ByteCount bytes = 0) {
  IterationMetrics m;
  m.elapsed_us = us;
  m.remote_misses = misses;
  m.total_bytes = bytes;
  m.messages = misses;
  return m;
}

TEST(MetricsLog, TotalsSumAllEntries) {
  MetricsLog log;
  log.record(StepKind::kInit, 0, metrics(100, 5));
  log.record(StepKind::kIteration, 1, metrics(200, 7));
  log.record(StepKind::kIteration, 2, metrics(300, 9));
  const IterationMetrics total = log.total();
  EXPECT_EQ(total.elapsed_us, 600);
  EXPECT_EQ(total.remote_misses, 21);
}

TEST(MetricsLog, TotalsByKind) {
  MetricsLog log;
  log.record(StepKind::kInit, 0, metrics(100, 5));
  log.record(StepKind::kIteration, 1, metrics(200, 7));
  log.record(StepKind::kMigration, -1, metrics(50, 0));
  EXPECT_EQ(log.total(StepKind::kIteration).elapsed_us, 200);
  EXPECT_EQ(log.total(StepKind::kMigration).elapsed_us, 50);
  EXPECT_EQ(log.total(StepKind::kTrackedIteration).elapsed_us, 0);
}

TEST(MetricsLog, CsvHasHeaderAndOneRowPerEntry) {
  MetricsLog log;
  log.record(StepKind::kInit, 0, metrics(100, 5, 4096));
  log.record(StepKind::kTrackedIteration, 1, metrics(200, 7));
  std::ostringstream out;
  log.write_csv(out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("index,kind,elapsed_us", 0), 0u);
  EXPECT_NE(csv.find("0,init,100,5"), std::string::npos);
  EXPECT_NE(csv.find("1,tracked,200,7"), std::string::npos);
  // header + 2 rows = 3 newline-terminated lines
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(MetricsLog, SummaryCountsIterationsSeparately) {
  MetricsLog log;
  log.record(StepKind::kInit, 0, metrics(100, 5));
  log.record(StepKind::kIteration, 1, metrics(100, 5));
  log.record(StepKind::kIteration, 2, metrics(100, 5));
  log.record(StepKind::kMigration, -1, metrics(100, 5));
  const std::string summary = log.summary();
  EXPECT_NE(summary.find("4 steps (2 iterations)"), std::string::npos);
  EXPECT_NE(summary.find("20 remote misses"), std::string::npos);
}

TEST(MetricsLog, StepKindNames) {
  EXPECT_STREQ(to_string(StepKind::kInit), "init");
  EXPECT_STREQ(to_string(StepKind::kIteration), "iteration");
  EXPECT_STREQ(to_string(StepKind::kTrackedIteration), "tracked");
  EXPECT_STREQ(to_string(StepKind::kMigration), "migration");
}

TEST(MetricsLog, StepKindNamesRoundTrip) {
  for (const StepKind kind :
       {StepKind::kInit, StepKind::kIteration, StepKind::kTrackedIteration,
        StepKind::kMigration}) {
    const auto parsed = step_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(step_kind_from_string("").has_value());
  EXPECT_FALSE(step_kind_from_string("warmup").has_value());
  EXPECT_FALSE(step_kind_from_string("Iteration").has_value());
}

TEST(MetricsLog, CsvCarriesCumulativeSimulatedTime) {
  // The sim_time_us column is the cumulative simulated time at which
  // each step *started*, so rows can be aligned with trace timestamps.
  MetricsLog log;
  log.record(StepKind::kInit, 0, metrics(100, 5));
  log.record(StepKind::kIteration, 1, metrics(200, 7));
  log.record(StepKind::kIteration, 2, metrics(300, 9));
  std::ostringstream out;
  log.write_csv(out);
  const std::string csv = out.str();
  const std::size_t header_end = csv.find('\n');
  EXPECT_EQ(csv.rfind(",sim_time_us", header_end), header_end - 12);
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  std::vector<std::string> suffixes;
  while (std::getline(lines, line)) {
    suffixes.push_back(line.substr(line.rfind(',')));
  }
  ASSERT_EQ(suffixes.size(), 3u);
  EXPECT_EQ(suffixes[0], ",0");
  EXPECT_EQ(suffixes[1], ",100");
  EXPECT_EQ(suffixes[2], ",300");
}

TEST(MetricsLog, EmptyLogIsWellBehaved) {
  MetricsLog log;
  EXPECT_EQ(log.total().elapsed_us, 0);
  std::ostringstream out;
  log.write_csv(out);
  const std::string csv = out.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
  EXPECT_NE(log.summary().find("0 steps"), std::string::npos);
}

}  // namespace
}  // namespace actrack
