#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace actrack {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(Rng, UniformInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0);
}

TEST(Rng, UniformRejectsNonPositiveBound) {
  Rng rng(9);
  EXPECT_THROW((void)rng.uniform(0), std::logic_error);
  EXPECT_THROW((void)rng.uniform(-5), std::logic_error);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(Rng, ShuffleHandlesTrivialSizes) {
  Rng rng(13);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(5);
  Rng fork1 = a.fork();
  Rng b(5);
  Rng fork2 = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork1.next(), fork2.next());
}

TEST(Rng, RoughUniformity) {
  // Chi-squared-style sanity check over 16 buckets.
  Rng rng(99);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 16000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<std::size_t>(rng.uniform(kBuckets))] += 1;
  }
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets / 2);
    EXPECT_LT(c, kDraws / kBuckets * 2);
  }
}

}  // namespace
}  // namespace actrack
