#include "runtime/cluster_runtime.hpp"

#include <gtest/gtest.h>

#include "apps/synthetic.hpp"

namespace actrack {
namespace {

TEST(ClusterRuntimeTest, RejectsMismatchedPlacement) {
  RingWorkload w(8, 2, 1);
  EXPECT_THROW(ClusterRuntime(w, Placement::stretch(4, 2)),
               std::logic_error);
}

TEST(ClusterRuntimeTest, IterationCounterAdvances) {
  RingWorkload w(8, 2, 1);
  ClusterRuntime runtime(w, Placement::stretch(8, 2));
  EXPECT_EQ(runtime.next_iteration(), 0);
  runtime.run_init();
  EXPECT_EQ(runtime.next_iteration(), 1);
  runtime.run_iteration();
  EXPECT_EQ(runtime.next_iteration(), 2);
}

TEST(ClusterRuntimeTest, InitTwiceThrows) {
  RingWorkload w(8, 2, 1);
  ClusterRuntime runtime(w, Placement::stretch(8, 2));
  runtime.run_init();
  EXPECT_THROW((void)runtime.run_init(), std::logic_error);
}

TEST(ClusterRuntimeTest, MetricsAreDeltasAndTotalsAccumulate) {
  RingWorkload w(8, 2, 1);
  ClusterRuntime runtime(w, Placement::stretch(8, 2));
  const IterationMetrics init = runtime.run_init();
  const IterationMetrics iter1 = runtime.run_iteration();
  EXPECT_GT(init.elapsed_us, 0);
  EXPECT_GT(iter1.elapsed_us, 0);
  const IterationMetrics& totals = runtime.totals();
  EXPECT_EQ(totals.elapsed_us, init.elapsed_us + iter1.elapsed_us);
  EXPECT_EQ(totals.remote_misses, init.remote_misses + iter1.remote_misses);
  EXPECT_EQ(totals.messages, init.messages + iter1.messages);
}

TEST(ClusterRuntimeTest, MigrationUpdatesPlacement) {
  RingWorkload w(8, 2, 1);
  ClusterRuntime runtime(w, Placement::stretch(8, 2));
  runtime.run_init();
  const Placement target({0, 1, 0, 1, 0, 1, 0, 1}, 2);
  const IterationMetrics m = runtime.migrate_to(target);
  EXPECT_EQ(runtime.placement(), target);
  EXPECT_GT(m.total_bytes, 0);  // stacks crossed the wire
}

TEST(ClusterRuntimeTest, SteadyStateRemoteMissesScaleWithCut) {
  // Cut-free placement (each ring edge inside a node) vs a placement
  // that cuts every edge: steady-state misses must be lower for the
  // former — the premise of the whole paper (§2).
  RingWorkload w(8, 4, 2);

  ClusterRuntime good(w, Placement({0, 0, 0, 0, 1, 1, 1, 1}, 2));
  good.run_init();
  good.run_iteration();
  const std::int64_t good_misses = good.run_iteration().remote_misses;

  ClusterRuntime bad(w, Placement({0, 1, 0, 1, 0, 1, 0, 1}, 2));
  bad.run_init();
  bad.run_iteration();
  const std::int64_t bad_misses = bad.run_iteration().remote_misses;

  EXPECT_LT(good_misses, bad_misses);
}

TEST(ClusterRuntimeTest, CollectCorrelationsMatchesOracleOnRing) {
  RingWorkload w(8, 4, 2);
  const CorrelationMatrix m = collect_correlations(w, 2);
  for (ThreadId i = 0; i < 8; ++i) {
    for (ThreadId j = i + 1; j < 8; ++j) {
      const bool adjacent = (j - i == 1) || (i == 0 && j == 7);
      EXPECT_EQ(m.at(i, j), adjacent ? 2 : 0) << i << ',' << j;
    }
  }
}

TEST(ClusterRuntimeTest, DiffBytesFlowOnSharedWrites) {
  PairsWithLockWorkload w(8, 2);
  ClusterRuntime runtime(w, Placement({0, 1, 0, 1, 0, 1, 0, 1}, 2));
  runtime.run_init();
  runtime.run_iteration();
  const IterationMetrics m = runtime.run_iteration();
  EXPECT_GT(m.diff_bytes, 0);
  EXPECT_LE(m.diff_bytes, m.total_bytes);
}

TEST(ClusterRuntimeTest, GcRunsWhenThresholdTiny) {
  RingWorkload w(8, 4, 2);
  RuntimeConfig config;
  config.dsm.gc_threshold_bytes = 64;
  ClusterRuntime runtime(w, Placement::stretch(8, 2), config);
  runtime.run_init();
  runtime.run_iteration();
  EXPECT_GT(runtime.totals().gc_runs, 0);
}

}  // namespace
}  // namespace actrack
