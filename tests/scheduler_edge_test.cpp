// Edge cases of the discrete-event cluster scheduler: degenerate
// phases, lock chains, wake ordering, single-node clusters.
#include <gtest/gtest.h>

#include <memory>

#include "apps/synthetic.hpp"
#include "sched/scheduler.hpp"
#include "trace/segment_builder.hpp"

namespace actrack {
namespace {

class SchedulerEdgeTest : public ::testing::Test {
 protected:
  void make(PageId pages, NodeId nodes, SchedConfig config = {}) {
    net_ = std::make_unique<NetworkModel>(nodes, CostModel{});
    dsm_ = std::make_unique<DsmSystem>(pages, nodes, net_.get());
    sched_ = std::make_unique<ClusterScheduler>(dsm_.get(), net_.get(),
                                                std::move(config));
  }

  /// A trace skeleton with `phases` empty phases for `threads` threads.
  static IterationTrace skeleton(std::int32_t threads, std::int32_t phases) {
    IterationTrace trace;
    trace.num_threads = threads;
    trace.phases.resize(static_cast<std::size_t>(phases));
    for (Phase& phase : trace.phases) {
      phase.threads.resize(static_cast<std::size_t>(threads));
    }
    return trace;
  }

  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<DsmSystem> dsm_;
  std::unique_ptr<ClusterScheduler> sched_;
};

TEST_F(SchedulerEdgeTest, EmptyPhasesStillCostBarriers) {
  make(4, 2);
  const IterationTrace trace = skeleton(4, 3);
  const IterationResult r =
      sched_->run_iteration(trace, Placement::stretch(4, 2));
  EXPECT_EQ(r.elapsed_us, 3 * CostModel{}.barrier_us);
  EXPECT_EQ(r.context_switches, 0);
}

TEST_F(SchedulerEdgeTest, ThreadWithNoSegmentsFinishesImmediately) {
  make(4, 2);
  IterationTrace trace = skeleton(4, 1);
  // Only thread 2 does anything.
  Segment seg;
  seg.compute_us = 1000;
  trace.phases[0].threads[2].segments.push_back(seg);
  const IterationResult r =
      sched_->run_iteration(trace, Placement::stretch(4, 2));
  EXPECT_GE(r.elapsed_us, 1000 + CostModel{}.barrier_us);
}

TEST_F(SchedulerEdgeTest, SingleNodeClusterNeverTouchesTheNetwork) {
  AllToAllWorkload w(8, 2);
  make(w.num_pages(), 1);
  const Placement p({0, 0, 0, 0, 0, 0, 0, 0}, 1);
  sched_->run_iteration(w.iteration(0), p);
  sched_->run_iteration(w.iteration(1), p);
  EXPECT_EQ(net_->totals().messages, 0);
  EXPECT_EQ(dsm_->stats().remote_misses, 0);
}

TEST_F(SchedulerEdgeTest, LockChainAcrossThreeNodesIsFcfs) {
  make(4, 3);
  IterationTrace trace = skeleton(3, 1);
  // Three threads on three nodes contend for lock 0; each holds it for
  // a long critical section.  All must complete (no lost wakeups).
  for (std::int32_t t = 0; t < 3; ++t) {
    Segment seg;
    seg.lock_id = 0;
    seg.compute_us = 500;
    seg.accesses.push_back({0, AccessKind::kWrite, 64});
    trace.phases[0].threads[static_cast<std::size_t>(t)].segments.push_back(
        seg);
  }
  const IterationResult r =
      sched_->run_iteration(trace, Placement({0, 1, 2}, 3));
  EXPECT_EQ(r.lock_acquires, 3);
  EXPECT_EQ(r.remote_lock_transfers, 2);
  // Critical sections serialise: at least 3 x 500 µs of work.
  EXPECT_GE(r.elapsed_us, 1500);
}

TEST_F(SchedulerEdgeTest, ReacquiringOwnLockIsCheap) {
  make(4, 2);
  IterationTrace trace = skeleton(2, 1);
  for (int rep = 0; rep < 3; ++rep) {
    Segment seg;
    seg.lock_id = 0;
    seg.compute_us = 10;
    trace.phases[0].threads[0].segments.push_back(seg);
  }
  const IterationResult r =
      sched_->run_iteration(trace, Placement::stretch(2, 2));
  EXPECT_EQ(r.lock_acquires, 3);
  EXPECT_EQ(r.remote_lock_transfers, 0);
}

TEST_F(SchedulerEdgeTest, ManyLocksDoNotInterfere) {
  make(8, 2);
  IterationTrace trace = skeleton(4, 1);
  // Each thread uses its own lock: no contention, 4 acquires.
  for (std::int32_t t = 0; t < 4; ++t) {
    Segment seg;
    seg.lock_id = t;
    seg.compute_us = 100;
    trace.phases[0].threads[static_cast<std::size_t>(t)].segments.push_back(
        seg);
  }
  const IterationResult r =
      sched_->run_iteration(trace, Placement::stretch(4, 2));
  EXPECT_EQ(r.lock_acquires, 4);
  EXPECT_EQ(r.remote_lock_transfers, 0);
}

TEST_F(SchedulerEdgeTest, UnbalancedPlacementRunsToCompletion) {
  RingWorkload w(8, 2, 1);
  make(w.num_pages(), 3);
  // 6-1-1 split: heavily unbalanced but legal.
  const Placement p({0, 0, 0, 0, 0, 0, 1, 2}, 3);
  sched_->run_iteration(w.iteration(0), p);
  const IterationResult r = sched_->run_iteration(w.iteration(1), p);
  EXPECT_GT(r.elapsed_us, 0);
}

TEST_F(SchedulerEdgeTest, TrackedIterationOnEmptyPhase) {
  make(4, 2);
  const IterationTrace trace = skeleton(4, 1);
  const TrackingResult r =
      sched_->run_tracked_iteration(trace, Placement::stretch(4, 2));
  EXPECT_EQ(r.tracking_faults, 0);
  EXPECT_EQ(r.coherence_faults, 0);
  for (const auto& bitmap : r.access_bitmaps) {
    EXPECT_EQ(bitmap.count(), 0);
  }
}

TEST_F(SchedulerEdgeTest, MigrationBetweenIdenticalPlacementsIsZeroCost) {
  make(4, 2);
  const Placement p = Placement::stretch(4, 2);
  const MigrationResult r = sched_->migrate(p, p);
  EXPECT_EQ(r.threads_moved, 0);
  EXPECT_EQ(net_->totals().messages, 0);
}

TEST_F(SchedulerEdgeTest, ComputeOnlySegmentsAdvanceClocks) {
  make(4, 2);
  IterationTrace trace = skeleton(2, 1);
  Segment seg;
  seg.compute_us = 12345;
  trace.phases[0].threads[0].segments.push_back(seg);
  trace.phases[0].threads[1].segments.push_back(seg);
  const IterationResult r =
      sched_->run_iteration(trace, Placement::stretch(2, 2));
  // Both threads run in parallel on separate nodes.
  EXPECT_EQ(r.elapsed_us, 12345 + CostModel{}.barrier_us);
}

TEST_F(SchedulerEdgeTest, SameNodeThreadsSerialise) {
  make(4, 2);
  IterationTrace trace = skeleton(2, 1);
  Segment seg;
  seg.compute_us = 1000;
  trace.phases[0].threads[0].segments.push_back(seg);
  trace.phases[0].threads[1].segments.push_back(seg);
  const IterationResult r =
      sched_->run_iteration(trace, Placement({0, 0}, 2));
  EXPECT_EQ(r.elapsed_us, 2000 + CostModel{}.barrier_us);
}

}  // namespace
}  // namespace actrack
