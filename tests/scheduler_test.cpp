#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/synthetic.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  void make(const Workload& w, NodeId nodes, SchedConfig sched_config = {}) {
    net_ = std::make_unique<NetworkModel>(nodes, CostModel{});
    dsm_ = std::make_unique<DsmSystem>(w.num_pages(), nodes, net_.get());
    sched_ = std::make_unique<ClusterScheduler>(dsm_.get(), net_.get(),
                                                sched_config);
  }

  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<DsmSystem> dsm_;
  std::unique_ptr<ClusterScheduler> sched_;
};

TEST_F(SchedulerTest, PrivateWorkloadHasNoRemoteMissesAfterInit) {
  PrivateWorkload w(8, 2);
  make(w, 2);
  const Placement p = Placement::stretch(8, 2);
  sched_->run_iteration(w.iteration(0), p);
  const std::int64_t misses_after_init = dsm_->stats().remote_misses;
  sched_->run_iteration(w.iteration(1), p);
  sched_->run_iteration(w.iteration(2), p);
  EXPECT_EQ(dsm_->stats().remote_misses, misses_after_init);
}

TEST_F(SchedulerTest, ElapsedTimeIsPositiveAndIncludesCompute) {
  PrivateWorkload w(4, 1);
  make(w, 2);
  const Placement p = Placement::stretch(4, 2);
  const IterationResult r = sched_->run_iteration(w.iteration(1), p);
  // 2 threads per node, 200 µs compute each, sequential on one CPU.
  EXPECT_GE(r.elapsed_us, 400);
}

TEST_F(SchedulerTest, RingSplitAcrossNodesCausesRemoteMisses) {
  RingWorkload w(8, 4, 2);
  make(w, 2);
  const Placement p = Placement::stretch(8, 2);
  sched_->run_iteration(w.iteration(0), p);
  const std::int64_t before = dsm_->stats().remote_misses;
  sched_->run_iteration(w.iteration(1), p);
  // Threads 3↔4 and 7↔0 straddle the node boundary; their shared pages
  // must fault remotely.
  EXPECT_GT(dsm_->stats().remote_misses, before);
}

TEST_F(SchedulerTest, SameNodePairsShareWithoutRemoteMisses) {
  // All ring sharing inside one node: after init, iterating causes no
  // remote traffic at all.
  RingWorkload w(4, 4, 2);
  make(w, 1);
  const Placement p({0, 0, 0, 0}, 1);
  sched_->run_iteration(w.iteration(0), p);
  net_->reset_counters();
  sched_->run_iteration(w.iteration(1), p);
  EXPECT_EQ(net_->totals().messages, 0);
}

TEST_F(SchedulerTest, LatencyHidingReducesElapsedTime) {
  AllToAllWorkload w(16, 2);
  const Placement p = Placement::stretch(16, 4);

  SchedConfig hiding;
  hiding.latency_hiding = true;
  make(w, 4, hiding);
  sched_->run_iteration(w.iteration(0), p);
  const SimTime with_hiding =
      sched_->run_iteration(w.iteration(1), p).elapsed_us;

  SchedConfig stalling;
  stalling.latency_hiding = false;
  make(w, 4, stalling);
  sched_->run_iteration(w.iteration(0), p);
  const SimTime without_hiding =
      sched_->run_iteration(w.iteration(1), p).elapsed_us;

  EXPECT_LT(with_hiding, without_hiding);
}

TEST_F(SchedulerTest, ContextSwitchesOnlyWithLatencyHiding) {
  AllToAllWorkload w(16, 2);
  const Placement p = Placement::stretch(16, 4);
  SchedConfig stalling;
  stalling.latency_hiding = false;
  make(w, 4, stalling);
  sched_->run_iteration(w.iteration(0), p);
  const IterationResult r = sched_->run_iteration(w.iteration(1), p);
  EXPECT_EQ(r.context_switches, 0);
}

TEST_F(SchedulerTest, LockWorkloadCompletesAndCountsAcquires) {
  PairsWithLockWorkload w(8, 2);
  make(w, 2);
  const Placement p = Placement::stretch(8, 2);
  sched_->run_iteration(w.iteration(0), p);
  const IterationResult r = sched_->run_iteration(w.iteration(1), p);
  // Every thread acquires the global lock once.
  EXPECT_EQ(r.lock_acquires, 8);
  // The lock must cross nodes at least once.
  EXPECT_GE(r.remote_lock_transfers, 1);
}

TEST_F(SchedulerTest, LockSerialisesAcrossPlacements) {
  // All threads on one node: no remote lock transfers.
  PairsWithLockWorkload w(4, 1);
  make(w, 1);
  const Placement p({0, 0, 0, 0}, 1);
  sched_->run_iteration(w.iteration(0), p);
  const IterationResult r = sched_->run_iteration(w.iteration(1), p);
  EXPECT_EQ(r.lock_acquires, 4);
  EXPECT_EQ(r.remote_lock_transfers, 0);
}

TEST_F(SchedulerTest, DeterministicAcrossRuns) {
  RingWorkload w(16, 3, 1);
  const Placement p = Placement::stretch(16, 4);

  make(w, 4);
  sched_->run_iteration(w.iteration(0), p);
  const IterationResult a = sched_->run_iteration(w.iteration(1), p);
  const std::int64_t misses_a = dsm_->stats().remote_misses;

  make(w, 4);
  sched_->run_iteration(w.iteration(0), p);
  const IterationResult b = sched_->run_iteration(w.iteration(1), p);
  const std::int64_t misses_b = dsm_->stats().remote_misses;

  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  EXPECT_EQ(misses_a, misses_b);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

TEST_F(SchedulerTest, MigrationMovesThreadsAndCostsTime) {
  RingWorkload w(8, 2, 1);
  make(w, 2);
  const Placement from = Placement::stretch(8, 2);
  const Placement to({0, 0, 1, 1, 0, 0, 1, 1}, 2);
  sched_->run_iteration(w.iteration(0), from);
  const MigrationResult r = sched_->migrate(from, to);
  EXPECT_EQ(r.threads_moved, from.migration_distance(to));
  EXPECT_GT(r.threads_moved, 0);
  EXPECT_GT(r.elapsed_us, 0);
  // Stack bytes crossed the wire.
  EXPECT_GE(net_->totals().total_bytes,
            static_cast<ByteCount>(r.threads_moved) *
                CostModel{}.thread_stack_bytes);
}

TEST_F(SchedulerTest, NullMigrationIsFree) {
  RingWorkload w(4, 2, 1);
  make(w, 2);
  const Placement p = Placement::stretch(4, 2);
  const MigrationResult r = sched_->migrate(p, p);
  EXPECT_EQ(r.threads_moved, 0);
}

TEST_F(SchedulerTest, PostMigrationFaultsRevealMovedThreadPages) {
  // After a thread moves, its working set must fault on the new node —
  // the mechanism passive tracking exploits (§4.1).
  PrivateWorkload w(4, 2);
  make(w, 2);
  const Placement from = Placement::stretch(4, 2);
  sched_->run_iteration(w.iteration(0), from);
  sched_->run_iteration(w.iteration(1), from);
  const std::int64_t before = dsm_->stats().remote_misses;

  const Placement to({1, 0, 0, 1}, 2);  // swap threads 0 and 3... 0↔nodes
  sched_->migrate(from, to);
  sched_->run_iteration(w.iteration(2), to);
  EXPECT_GT(dsm_->stats().remote_misses, before);
}

TEST_F(SchedulerTest, RejectsMismatchedTraceAndPlacement) {
  RingWorkload w(8, 2, 1);
  make(w, 2);
  const Placement p = Placement::stretch(4, 2);  // wrong thread count
  EXPECT_THROW((void)sched_->run_iteration(w.iteration(0), p),
               std::logic_error);
}

}  // namespace
}  // namespace actrack
