#include "trace/segment_builder.hpp"

#include <gtest/gtest.h>

#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

class SegmentBuilderTest : public ::testing::Test {
 protected:
  AddressSpace space_;
};

TEST_F(SegmentBuilderTest, EmptySegment) {
  SegmentBuilder sb;
  const Segment seg = sb.take();
  EXPECT_TRUE(seg.accesses.empty());
  EXPECT_EQ(seg.lock_id, -1);
  EXPECT_EQ(seg.compute_us, 0);
}

TEST_F(SegmentBuilderTest, SinglePageRead) {
  const SharedBuffer buf = space_.allocate(4 * kPageSize, "buf");
  SegmentBuilder sb;
  sb.read(buf, 100, 50);
  const Segment seg = sb.take();
  ASSERT_EQ(seg.accesses.size(), 1u);
  EXPECT_EQ(seg.accesses[0].page, buf.first_page());
  EXPECT_EQ(seg.accesses[0].kind, AccessKind::kRead);
  EXPECT_EQ(seg.accesses[0].bytes_written, 0);
}

TEST_F(SegmentBuilderTest, ReadSpanningPages) {
  const SharedBuffer buf = space_.allocate(4 * kPageSize, "buf");
  SegmentBuilder sb;
  sb.read(buf, kPageSize - 10, 20);  // straddles pages 0 and 1
  const Segment seg = sb.take();
  ASSERT_EQ(seg.accesses.size(), 2u);
  EXPECT_EQ(seg.accesses[0].page, buf.first_page());
  EXPECT_EQ(seg.accesses[1].page, buf.first_page() + 1);
}

TEST_F(SegmentBuilderTest, WriteTracksBytesPerPage) {
  const SharedBuffer buf = space_.allocate(4 * kPageSize, "buf");
  SegmentBuilder sb;
  sb.write(buf, kPageSize - 100, 300);  // 100 B on page 0, 200 B on page 1
  const Segment seg = sb.take();
  ASSERT_EQ(seg.accesses.size(), 2u);
  EXPECT_EQ(seg.accesses[0].kind, AccessKind::kWrite);
  EXPECT_EQ(seg.accesses[0].bytes_written, 100);
  EXPECT_EQ(seg.accesses[1].bytes_written, 200);
}

TEST_F(SegmentBuilderTest, WriteDominatesRead) {
  const SharedBuffer buf = space_.allocate(kPageSize, "buf");
  SegmentBuilder sb;
  sb.read(buf, 0, 64);
  sb.write(buf, 64, 64);
  const Segment seg = sb.take();
  ASSERT_EQ(seg.accesses.size(), 1u);
  EXPECT_EQ(seg.accesses[0].kind, AccessKind::kWrite);
  EXPECT_EQ(seg.accesses[0].bytes_written, 64);
}

TEST_F(SegmentBuilderTest, WrittenBytesAccumulateAndCap) {
  const SharedBuffer buf = space_.allocate(kPageSize, "buf");
  SegmentBuilder sb;
  sb.write(buf, 0, 3000);
  sb.write(buf, 0, 3000);  // overlaps; tracked bytes cap at page size
  const Segment seg = sb.take();
  ASSERT_EQ(seg.accesses.size(), 1u);
  EXPECT_EQ(seg.accesses[0].bytes_written, kPageSize);
}

TEST_F(SegmentBuilderTest, AccessesSortedByPage) {
  const SharedBuffer buf = space_.allocate(10 * kPageSize, "buf");
  SegmentBuilder sb;
  sb.read(buf, 7 * kPageSize, 10);
  sb.read(buf, 2 * kPageSize, 10);
  sb.read(buf, 5 * kPageSize, 10);
  const Segment seg = sb.take();
  ASSERT_EQ(seg.accesses.size(), 3u);
  EXPECT_LT(seg.accesses[0].page, seg.accesses[1].page);
  EXPECT_LT(seg.accesses[1].page, seg.accesses[2].page);
}

TEST_F(SegmentBuilderTest, ZeroLengthTouchIsIgnored) {
  const SharedBuffer buf = space_.allocate(kPageSize, "buf");
  SegmentBuilder sb;
  sb.read(buf, 10, 0);
  EXPECT_EQ(sb.touched_pages(), 0);
}

TEST_F(SegmentBuilderTest, OutOfRangeThrows) {
  const SharedBuffer buf = space_.allocate(kPageSize, "buf");
  SegmentBuilder sb;
  EXPECT_THROW(sb.read(buf, kPageSize - 10, 20), std::logic_error);
  EXPECT_THROW(sb.read(buf, -1, 2), std::logic_error);
}

TEST_F(SegmentBuilderTest, LockAndComputeCarriedIntoSegment) {
  SegmentBuilder sb;
  sb.set_lock(3);
  sb.add_compute(100);
  sb.add_compute(50);
  const Segment seg = sb.take();
  EXPECT_EQ(seg.lock_id, 3);
  EXPECT_EQ(seg.compute_us, 150);
}

TEST_F(SegmentBuilderTest, TakeResetsState) {
  const SharedBuffer buf = space_.allocate(kPageSize, "buf");
  SegmentBuilder sb;
  sb.set_lock(1);
  sb.add_compute(10);
  sb.write(buf, 0, 10);
  (void)sb.take();
  const Segment seg2 = sb.take();
  EXPECT_TRUE(seg2.accesses.empty());
  EXPECT_EQ(seg2.lock_id, -1);
  EXPECT_EQ(seg2.compute_us, 0);
}

TEST_F(SegmentBuilderTest, ElemHelpersMatchByteForm) {
  const SharedBuffer buf = space_.allocate(4 * kPageSize, "buf");
  SegmentBuilder a, b;
  a.read_elems(buf, 8, 100, 50);
  b.read(buf, 800, 400);
  const Segment sa = a.take();
  const Segment sb2 = b.take();
  ASSERT_EQ(sa.accesses.size(), sb2.accesses.size());
  for (std::size_t i = 0; i < sa.accesses.size(); ++i) {
    EXPECT_EQ(sa.accesses[i].page, sb2.accesses[i].page);
  }
}

TEST(TraceUtils, ValidateRejectsBadPageIds) {
  IterationTrace trace;
  trace.num_threads = 1;
  trace.phases.resize(1);
  trace.phases[0].threads.resize(1);
  Segment seg;
  seg.accesses.push_back({99, AccessKind::kRead, 0});
  trace.phases[0].threads[0].segments.push_back(seg);
  EXPECT_THROW(validate_trace(trace, 10), std::logic_error);
  EXPECT_NO_THROW(validate_trace(trace, 100));
}

TEST(TraceUtils, ValidateRejectsReadWithWrittenBytes) {
  IterationTrace trace;
  trace.num_threads = 1;
  trace.phases.resize(1);
  trace.phases[0].threads.resize(1);
  Segment seg;
  seg.accesses.push_back({0, AccessKind::kRead, 16});
  trace.phases[0].threads[0].segments.push_back(seg);
  EXPECT_THROW(validate_trace(trace, 10), std::logic_error);
}

TEST(TraceUtils, PagesTouchedPerThread) {
  IterationTrace trace;
  trace.num_threads = 2;
  trace.phases.resize(2);
  for (auto& phase : trace.phases) phase.threads.resize(2);
  Segment s0;
  s0.accesses.push_back({1, AccessKind::kWrite, 8});
  trace.phases[0].threads[0].segments.push_back(s0);
  Segment s1;
  s1.accesses.push_back({1, AccessKind::kRead, 0});
  s1.accesses.push_back({3, AccessKind::kRead, 0});
  trace.phases[1].threads[1].segments.push_back(s1);

  const auto touched = pages_touched_per_thread(trace, 5);
  ASSERT_EQ(touched.size(), 2u);
  EXPECT_EQ(touched[0].count(), 1);
  EXPECT_TRUE(touched[0].test(1));
  EXPECT_EQ(touched[1].count(), 2);
  EXPECT_TRUE(touched[1].test(1));
  EXPECT_TRUE(touched[1].test(3));
  EXPECT_EQ(distinct_pages_touched(trace, 5), 2);
}

}  // namespace
}  // namespace actrack
