#include "trace/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "apps/synthetic.hpp"
#include "apps/trace_workload.hpp"
#include "apps/workload.hpp"
#include "runtime/cluster_runtime.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

TraceFile sample_file(std::int32_t iterations = 2) {
  RingWorkload w(4, 2, 1);
  TraceFile file;
  file.num_threads = w.num_threads();
  file.num_pages = w.num_pages();
  for (std::int32_t i = 0; i < iterations; ++i) {
    file.iterations.push_back(w.iteration(i));
  }
  return file;
}

bool traces_equal(const IterationTrace& a, const IterationTrace& b) {
  if (a.num_threads != b.num_threads) return false;
  if (a.phases.size() != b.phases.size()) return false;
  for (std::size_t p = 0; p < a.phases.size(); ++p) {
    if (a.phases[p].threads.size() != b.phases[p].threads.size()) {
      return false;
    }
    for (std::size_t t = 0; t < a.phases[p].threads.size(); ++t) {
      const auto& sa = a.phases[p].threads[t].segments;
      const auto& sb = b.phases[p].threads[t].segments;
      if (sa.size() != sb.size()) return false;
      for (std::size_t s = 0; s < sa.size(); ++s) {
        if (sa[s].lock_id != sb[s].lock_id) return false;
        if (sa[s].compute_us != sb[s].compute_us) return false;
        if (sa[s].accesses.size() != sb[s].accesses.size()) return false;
        for (std::size_t k = 0; k < sa[s].accesses.size(); ++k) {
          const PageAccess& x = sa[s].accesses[k];
          const PageAccess& y = sb[s].accesses[k];
          if (x.page != y.page || x.kind != y.kind ||
              x.bytes_written != y.bytes_written) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

TEST(TraceSerialize, RoundTripsExactly) {
  const TraceFile original = sample_file(3);
  std::stringstream stream;
  write_trace_file(original, stream);
  const TraceFile parsed = read_trace_file(stream);
  EXPECT_EQ(parsed.num_threads, original.num_threads);
  EXPECT_EQ(parsed.num_pages, original.num_pages);
  ASSERT_EQ(parsed.iterations.size(), original.iterations.size());
  for (std::size_t i = 0; i < original.iterations.size(); ++i) {
    EXPECT_TRUE(traces_equal(parsed.iterations[i], original.iterations[i]))
        << "iteration " << i;
  }
}

TEST(TraceSerialize, RoundTripsLockWorkload) {
  PairsWithLockWorkload w(4, 1);
  TraceFile file;
  file.num_threads = 4;
  file.num_pages = w.num_pages();
  file.iterations.push_back(w.iteration(0));
  file.iterations.push_back(w.iteration(1));
  std::stringstream stream;
  write_trace_file(file, stream);
  const TraceFile parsed = read_trace_file(stream);
  EXPECT_TRUE(traces_equal(parsed.iterations[1], file.iterations[1]));
}

TEST(TraceSerialize, CommentsAndBlankLinesIgnored) {
  std::stringstream stream;
  stream << "# a comment\nactrace 1\n\nthreads 2 pages 4 iterations 1\n"
         << "iteration 0\nphase\nthread 0  # worker\nseg compute=5\n"
         << "r 1\nw 2 64\nend\n";
  const TraceFile parsed = read_trace_file(stream);
  EXPECT_EQ(parsed.num_threads, 2);
  ASSERT_EQ(parsed.iterations.size(), 1u);
  const Segment& seg = parsed.iterations[0].phases[0].threads[0].segments[0];
  EXPECT_EQ(seg.compute_us, 5);
  ASSERT_EQ(seg.accesses.size(), 2u);
  EXPECT_EQ(seg.accesses[1].bytes_written, 64);
}

TEST(TraceSerialize, RejectsMalformedInput) {
  const auto reject = [](const std::string& text) {
    std::stringstream stream(text);
    EXPECT_THROW((void)read_trace_file(stream), std::runtime_error) << text;
  };
  reject("");
  reject("wrong 1\n");
  reject("actrace 2\n");
  reject("actrace 1\nthreads 2 pages 4\n");  // missing iterations
  reject("actrace 1\nthreads 2 pages 4 iterations 1\nend\n");  // count
  reject("actrace 1\nthreads 2 pages 4 iterations 1\n"
         "iteration 0\nphase\nthread 5\nend\n");  // bad thread
  reject("actrace 1\nthreads 2 pages 4 iterations 1\n"
         "iteration 0\nphase\nthread 0\nseg\nr 9\nend\n");  // bad page
  reject("actrace 1\nthreads 2 pages 4 iterations 1\n"
         "iteration 0\nphase\nthread 0\nr 1\nend\n");  // access before seg
  reject("actrace 1\nthreads 2 pages 4 iterations 1\niteration 0\n");  // EOF
  reject("actrace 1\nthreads 2 pages 4 iterations 1\n"
         "iteration 0\nphase\nthread 0\nseg\nw 1 9999\nend\n");  // bytes
}

TEST(TraceSerialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "trace_roundtrip.actrace";
  const TraceFile original = sample_file();
  save_trace_file(original, path);
  const TraceFile loaded = load_trace_file(path);
  EXPECT_EQ(loaded.iterations.size(), original.iterations.size());
  std::remove(path.c_str());
}

TEST(TraceSerialize, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_trace_file("/nonexistent/x.actrace"),
               std::runtime_error);
}

TEST(TraceWorkloadTest, ReplayMatchesOriginalBehaviour) {
  // Record the ring workload, replay it, and check the DSM sees the
  // same remote misses.
  RingWorkload original(8, 2, 1);
  TraceFile file;
  file.num_threads = 8;
  file.num_pages = original.num_pages();
  for (std::int32_t i = 0; i <= 3; ++i) {
    file.iterations.push_back(original.iteration(i));
  }
  TraceWorkload replay(file);
  EXPECT_EQ(replay.num_pages(), original.num_pages());
  EXPECT_EQ(replay.synchronization(), "barrier");

  const Placement p = Placement::stretch(8, 2);
  ClusterRuntime a(original, p);
  a.run_init();
  a.run_iteration();
  a.run_iteration();

  ClusterRuntime b(replay, p);
  b.run_init();
  b.run_iteration();
  b.run_iteration();

  EXPECT_EQ(a.totals().remote_misses, b.totals().remote_misses);
  EXPECT_EQ(a.totals().messages, b.totals().messages);
}

TEST(TraceWorkloadTest, MeasuredIterationsCycle) {
  const TraceFile file = sample_file(3);  // init + 2 measured
  TraceWorkload w(file);
  EXPECT_TRUE(traces_equal(w.iteration(1), file.iterations[1]));
  EXPECT_TRUE(traces_equal(w.iteration(2), file.iterations[2]));
  EXPECT_TRUE(traces_equal(w.iteration(3), file.iterations[1]));  // wraps
}

TEST(TraceWorkloadTest, SingleIterationFileReplaysItEverywhere) {
  const TraceFile file = sample_file(1);
  TraceWorkload w(file);
  EXPECT_TRUE(traces_equal(w.iteration(0), file.iterations[0]));
  EXPECT_TRUE(traces_equal(w.iteration(5), file.iterations[0]));
}

// Parameterised round-trip over every Table 1 application: serialising
// and replaying must preserve the traces byte-for-byte.
class SerializeAllApps : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializeAllApps, RoundTripPreservesTraces) {
  const auto w = make_workload(GetParam(), 16);
  TraceFile file;
  file.num_threads = w->num_threads();
  file.num_pages = w->num_pages();
  file.iterations.push_back(w->iteration(0));
  file.iterations.push_back(w->iteration(1));

  std::stringstream stream;
  write_trace_file(file, stream);
  const TraceFile parsed = read_trace_file(stream);
  ASSERT_EQ(parsed.iterations.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(traces_equal(parsed.iterations[i], file.iterations[i]))
        << GetParam() << " iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, SerializeAllApps,
    ::testing::ValuesIn(all_workload_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(TraceWorkloadTest, LockDetectionSetsSyncKinds) {
  PairsWithLockWorkload locks(4, 1);
  TraceFile file;
  file.num_threads = 4;
  file.num_pages = locks.num_pages();
  file.iterations.push_back(locks.iteration(1));
  TraceWorkload w(file);
  EXPECT_EQ(w.synchronization(), "barrier, lock");
}

}  // namespace
}  // namespace actrack
