// Tests of the serving subsystem (src/serve): deterministic open-loop
// request generation, the KV/Graph service workloads, the shared
// DriftSchedule, and the continuous serving runtime's budget and
// hysteresis contracts.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "apps/drift_schedule.hpp"
#include "apps/drifting.hpp"
#include "apps/workload.hpp"
#include "serve/graph_service.hpp"
#include "serve/kv_service.hpp"
#include "serve/reqgen.hpp"
#include "check/checker.hpp"
#include "serve/serving_runtime.hpp"
#include "trace/serialize.hpp"
#include "trace/trace_utils.hpp"

namespace actrack::serve {
namespace {

// --- DriftSchedule -----------------------------------------------------

TEST(DriftSchedule, UnseededModeIsTheHistoricalLinearRamp) {
  const DriftSchedule d(/*period=*/4, /*shift=*/3, /*modulus=*/16);
  for (std::int64_t step = 0; step < 64; ++step) {
    const std::int64_t epoch = step / 4;
    EXPECT_EQ(d.rotation_of(step), (epoch * 3) % 16) << "step " << step;
  }
}

TEST(DriftSchedule, SeededModeStartsUnrotatedAndIsRandomAccess) {
  const DriftSchedule d(6, 1, 16, /*seed=*/0xFEEDULL);
  EXPECT_EQ(d.rotation_of(0), 0);
  EXPECT_EQ(d.rotation_of(5), 0);  // epoch 0 stays un-rotated
  // Random access: querying epoch 7 directly matches querying it after
  // walking the earlier epochs (no sequential generator state).
  const std::int32_t direct = d.rotation_of(7 * 6);
  for (std::int64_t s = 0; s < 7 * 6; ++s) (void)d.rotation_of(s);
  EXPECT_EQ(d.rotation_of(7 * 6), direct);
  // Rotations stay in range and actually move at some point.
  std::set<std::int32_t> seen;
  for (std::int64_t e = 0; e < 12; ++e) {
    const std::int32_t r = d.rotation_of(e * 6);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 16);
    seen.insert(r);
  }
  EXPECT_GT(seen.size(), 2u);
}

// Pins the DriftingWorkload refactor onto DriftSchedule: every epoch's
// exchange peer must match the historical closed form
// (t + 1 + epoch*shift) mod n, access for access.
TEST(DriftSchedule, DriftingWorkloadTracesAreBitIdentical) {
  const std::int32_t n = 16, period = 8, shift = 5, pages = 4, shared = 2;
  const DriftingWorkload w(n, period, shift, pages, shared);
  for (std::int32_t iter = 1; iter < 40; ++iter) {
    const IterationTrace trace = w.iteration(iter);
    const std::int32_t epoch = iter / period;
    for (std::int32_t t = 0; t < n; ++t) {
      const std::int32_t peer = (t + 1 + epoch * shift) % n;
      const auto& segs =
          trace.phases[0].threads[static_cast<std::size_t>(t)].segments;
      ASSERT_EQ(segs.size(), 1u);
      bool touched_peer = false;
      for (const PageAccess& pa : segs[0].accesses) {
        if (pa.page >= static_cast<PageId>(peer) * pages &&
            pa.page < static_cast<PageId>(peer + 1) * pages &&
            // When the ramp wraps onto the thread itself (epochs where
            // 1 + epoch*shift ≡ 0 mod n) the self-read folds into the
            // write; otherwise the peer region must appear as a read.
            (peer == t || pa.kind == AccessKind::kRead)) {
          touched_peer = true;
        }
      }
      EXPECT_TRUE(touched_peer)
          << "iter " << iter << " thread " << t << " peer " << peer;
    }
  }
}

// --- Request generation ------------------------------------------------

TEST(ZipfSampler, DistributionIsNormalizedAndSkewed) {
  const ZipfSampler z(1024, 0.9);
  double total = 0.0;
  for (std::int64_t r = 0; r < z.num_items(); ++r) {
    total += z.probability(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(z.probability(0), z.probability(1));
  EXPECT_GT(z.probability(0), 20.0 * z.probability(1023));
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t r = z.sample(rng);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 1024);
  }
}

TEST(ZipfSampler, ZeroSkewIsUniform) {
  const ZipfSampler z(64, 0.0);
  EXPECT_NEAR(z.probability(0), 1.0 / 64.0, 1e-12);
  EXPECT_NEAR(z.probability(63), 1.0 / 64.0, 1e-12);
}

TEST(RequestGenerator, WindowsAreDeterministicSortedAndInRange) {
  TrafficConfig traffic;
  traffic.rate_per_sec = 40'000;
  traffic.window_us = 20'000;
  const RequestGenerator gen(traffic, 512);
  const std::vector<Request> a = gen.window(3, 100);
  const std::vector<Request> b = gen.window(3, 100);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  SimTime last = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_GE(a[i].arrival_us, 1);
    EXPECT_LE(a[i].arrival_us, traffic.window_us);
    EXPECT_GE(a[i].arrival_us, last);
    last = a[i].arrival_us;
    EXPECT_GE(a[i].item, 0);
    EXPECT_LT(a[i].item, 512);
  }
  // Different windows and different hot bases give different streams.
  EXPECT_NE(gen.window(4, 100).size(), 0u);
}

// --- Service workloads -------------------------------------------------

TEST(KvService, TracesAreValidAndCarryArrivals) {
  const KvServiceWorkload w(16);
  validate_trace(w.iteration(0), w.num_pages());
  const IterationTrace win = w.iteration(1);
  validate_trace(win, w.num_pages());
  std::int64_t requests = 0;
  for (const auto& tp : win.phases[0].threads) {
    SimTime last = 0;
    for (const Segment& seg : tp.segments) {
      EXPECT_GE(seg.start_at_us, 1);  // every KV segment is a request
      EXPECT_GE(seg.start_at_us, last);
      last = seg.start_at_us;
      requests += 1;
    }
  }
  EXPECT_GT(requests, 0);
}

TEST(KvService, ReplicaHostIsAFixedPointFreePermutation) {
  for (std::int32_t n : {2, 3, 16, 64}) {
    const KvServiceWorkload w(n);
    std::set<std::int32_t> hosts;
    for (std::int32_t p = 0; p < n; ++p) {
      const std::int32_t h = w.replica_host(p);
      EXPECT_NE(h, p) << "n=" << n << " shard " << p;
      hosts.insert(h);
    }
    EXPECT_EQ(hosts.size(), static_cast<std::size_t>(n));
  }
}

TEST(GraphService, TracesAreValidWithMaintenanceAndWalks) {
  const GraphServiceWorkload w(16);
  validate_trace(w.iteration(0), w.num_pages());
  const IterationTrace win = w.iteration(2);
  validate_trace(win, w.num_pages());
  std::int64_t requests = 0, maintenance = 0;
  for (const auto& tp : win.phases[0].threads) {
    for (const Segment& seg : tp.segments) {
      (seg.start_at_us >= 1 ? requests : maintenance) += 1;
    }
  }
  EXPECT_EQ(maintenance, 16);  // one ingest segment per owner
  EXPECT_GT(requests, 0);
  // Hops ring within an interleaved community (partitions congruent
  // mod C) and visit every member of it.
  EXPECT_EQ(w.num_communities(), 4);
  for (std::int32_t p = 0; p < 16; ++p) {
    EXPECT_NE(w.hop_target(p), p);
    EXPECT_EQ(w.hop_target(p) % w.num_communities(),
              p % w.num_communities());
  }
  std::int32_t member = 1, visited = 0;
  do {
    member = w.hop_target(member);
    ++visited;
  } while (member != 1);
  EXPECT_EQ(visited, 4);  // 16 partitions / 4 communities
}

// The service traces run through the full protocol checker grid —
// every LRC variant, including aggressive GC, mid-run migration, a
// faulty network, and the packetized link layer — after a round trip
// through the trace serializer, so open-loop arrivals survive both the
// text format and every protocol configuration.
TEST(KvService, PassesTheLrcCheckerGridWithFaultsAndLink) {
  KvConfig config;
  config.traffic.rate_per_sec = 4'000.0;  // keep the grid cheap
  const KvServiceWorkload w(8, config);
  TraceFile file;
  file.num_threads = w.num_threads();
  file.num_pages = w.num_pages();
  for (std::int32_t i = 0; i < 4; ++i) {
    file.iterations.push_back(w.iteration(i));
  }
  std::stringstream buffer;
  write_trace_file(file, buffer);
  const TraceFile replay = read_trace_file(buffer);
  const Segment& orig = file.iterations[2].phases[0].threads[1].segments[0];
  const Segment& back = replay.iterations[2].phases[0].threads[1].segments[0];
  ASSERT_EQ(back.start_at_us, orig.start_at_us);

  const auto verdict = check::check_trace(
      replay,
      check::standard_variants(ConsistencyModel::kLazyReleaseMultiWriter));
  EXPECT_FALSE(verdict.has_value())
      << verdict->variant << ": " << verdict->message;
}

TEST(ServiceWorkloads, RegisteredInTheFactoryButNotTheTableGrid) {
  EXPECT_EQ(make_workload("KV", 8)->name(), "KV");
  EXPECT_EQ(make_workload("Graph", 8)->name(), "Graph");
  for (const std::string& name : all_workload_names()) {
    EXPECT_NE(name, "KV");
    EXPECT_NE(name, "Graph");
  }
}

// --- Serving runtime ---------------------------------------------------

RuntimeConfig serve_runtime_config(std::int32_t des_jobs = 1) {
  RuntimeConfig config;
  config.sched.des_jobs = des_jobs;
  return config;
}

TEST(ServingRuntime, ServesRequestsAndReportsPercentiles) {
  const KvServiceWorkload w(16);
  ServingRuntime rt(w, Placement::stretch(16, 4), serve_runtime_config(),
                    ServeConfig{});
  const std::vector<WindowStats> stats = rt.run(6);
  ASSERT_EQ(stats.size(), 6u);
  for (const WindowStats& s : stats) {
    EXPECT_GT(s.served, 0) << "window " << s.window;
    EXPECT_GE(s.p99_us, s.p95_us);
    EXPECT_GE(s.p95_us, s.p50_us);
    EXPECT_GT(s.p50_us, 0);
  }
  EXPECT_EQ(rt.total_served(), rt.latency().count());
  EXPECT_GT(rt.total_served(), 0);
}

TEST(ServingRuntime, StaticModeMatchesPlainClusterRuntime) {
  // The serve-off contract: kStatic must not perturb the simulation at
  // all relative to running the same iterations directly.
  const KvServiceWorkload w(16);
  ClusterRuntime plain(w, Placement::stretch(16, 4),
                       serve_runtime_config());
  plain.run_init();
  ServeConfig off;
  off.mode = ServeMode::kStatic;
  ServingRuntime rt(w, Placement::stretch(16, 4), serve_runtime_config(),
                    off);
  rt.run_init();
  for (int i = 0; i < 4; ++i) {
    const IterationMetrics a = plain.run_iteration();
    const WindowStats s = rt.run_window();
    EXPECT_EQ(a.elapsed_us, s.metrics.elapsed_us) << "window " << i;
    EXPECT_EQ(a.remote_misses, s.metrics.remote_misses);
    EXPECT_EQ(a.total_bytes, s.metrics.total_bytes);
    EXPECT_EQ(s.moved_threads, 0);
    EXPECT_EQ(s.tracked_pages, 0);
  }
}

TEST(ServingRuntime, BitIdenticalAcrossDesJobs) {
  const KvServiceWorkload w(16);
  ServeConfig cfg;
  ServingRuntime serial(w, Placement::stretch(16, 4),
                        serve_runtime_config(1), cfg);
  ServingRuntime parallel(w, Placement::stretch(16, 4),
                          serve_runtime_config(4), cfg);
  const std::vector<WindowStats> a = serial.run(8);
  const std::vector<WindowStats> b = parallel.run(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].served, b[i].served) << "window " << i;
    EXPECT_EQ(a[i].p50_us, b[i].p50_us) << "window " << i;
    EXPECT_EQ(a[i].p99_us, b[i].p99_us) << "window " << i;
    EXPECT_EQ(a[i].metrics.elapsed_us, b[i].metrics.elapsed_us);
    EXPECT_EQ(a[i].moved_threads, b[i].moved_threads);
    EXPECT_EQ(a[i].tracked_pages, b[i].tracked_pages);
  }
  EXPECT_EQ(serial.placement().node_of_thread(),
            parallel.placement().node_of_thread());
}

TEST(ServingRuntime, TrackedStaysWithinBudgetAndHysteresis) {
  const KvServiceWorkload w(16);
  ServeConfig cfg;
  cfg.budget_bytes = 3 * 64 * 1024;  // three stack moves per window
  cfg.hysteresis_windows = 2;
  ServingRuntime rt(w, Placement::stretch(16, 4), serve_runtime_config(),
                    cfg);
  rt.run_init();
  std::vector<NodeId> prev = rt.placement().node_of_thread();
  // last_moved[t] = window index of t's most recent migration.
  std::vector<std::int32_t> last_moved(16, -100);
  for (std::int32_t win = 0; win < 12; ++win) {
    const WindowStats s = rt.run_window();
    EXPECT_LE(s.moved_bytes, cfg.budget_bytes) << "window " << win;
    const std::vector<NodeId>& now = rt.placement().node_of_thread();
    for (std::int32_t t = 0; t < 16; ++t) {
      if (now[static_cast<std::size_t>(t)] !=
          prev[static_cast<std::size_t>(t)]) {
        EXPECT_GT(win - last_moved[static_cast<std::size_t>(t)],
                  cfg.hysteresis_windows)
            << "thread " << t << " bounced at window " << win;
        last_moved[static_cast<std::size_t>(t)] = win;
      }
    }
    prev = now;
  }
}

TEST(ServingRuntime, OneShotMigratesAtMostOnce) {
  const GraphServiceWorkload w(16);
  ServeConfig cfg;
  cfg.mode = ServeMode::kOneShot;
  cfg.oneshot_warmup = 3;
  ServingRuntime rt(w, Placement::stretch(16, 4), serve_runtime_config(),
                    cfg);
  rt.run_init();
  std::int32_t migrations = 0;
  for (std::int32_t win = 0; win < 10; ++win) {
    const WindowStats s = rt.run_window();
    if (s.moved_threads > 0) {
      migrations += 1;
      EXPECT_EQ(win, cfg.oneshot_warmup - 1);
    }
    if (win >= cfg.oneshot_warmup) {
      EXPECT_EQ(s.tracked_pages, 0) << "tracker still on at " << win;
    }
  }
  EXPECT_LE(migrations, 1);
}

}  // namespace
}  // namespace actrack::serve
