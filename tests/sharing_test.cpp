#include "correlation/sharing.hpp"

#include <gtest/gtest.h>

namespace actrack {
namespace {

TEST(SharingDegree, PaperExample) {
  // §4.2's worked example: t1 accesses page x; t2 accesses x and y; t3
  // accesses y and z.  All on one node: faults = 1+2+2 = 5, distinct
  // pages = 3, so the average number of threads per page is 5/3 ≈ 1.67.
  std::vector<DynamicBitset> bitmaps(3, DynamicBitset(4));
  bitmaps[0].set(0);            // x
  bitmaps[1].set(0);            // x
  bitmaps[1].set(1);            // y
  bitmaps[2].set(1);            // y
  bitmaps[2].set(2);            // z
  const double degree = sharing_degree(bitmaps, {0, 0, 0}, 1);
  EXPECT_NEAR(degree, 5.0 / 3.0, 1e-12);
}

TEST(SharingDegree, NoSharingIsExactlyOne) {
  std::vector<DynamicBitset> bitmaps(4, DynamicBitset(8));
  for (std::size_t t = 0; t < 4; ++t) {
    bitmaps[t].set(static_cast<std::int64_t>(t) * 2);
    bitmaps[t].set(static_cast<std::int64_t>(t) * 2 + 1);
  }
  EXPECT_DOUBLE_EQ(sharing_degree(bitmaps, {0, 0, 1, 1}, 2), 1.0);
}

TEST(SharingDegree, FullSharingEqualsThreadsPerNode) {
  // Every thread touches every page: degree == local thread count.
  std::vector<DynamicBitset> bitmaps(8, DynamicBitset(5));
  for (auto& b : bitmaps) b.set_all();
  EXPECT_DOUBLE_EQ(sharing_degree(bitmaps, {0, 0, 0, 0, 1, 1, 1, 1}, 2), 4.0);
}

TEST(SharingDegree, DependsOnPlacement) {
  // Threads 0,1 share a page; 2,3 share another.  Pairing sharers on a
  // node doubles the degree relative to splitting them.
  std::vector<DynamicBitset> bitmaps(4, DynamicBitset(2));
  bitmaps[0].set(0);
  bitmaps[1].set(0);
  bitmaps[2].set(1);
  bitmaps[3].set(1);
  EXPECT_DOUBLE_EQ(sharing_degree(bitmaps, {0, 0, 1, 1}, 2), 2.0);
  EXPECT_DOUBLE_EQ(sharing_degree(bitmaps, {0, 1, 0, 1}, 2), 1.0);
}

TEST(SharingDegree, EmptyBitmapsGiveZero) {
  std::vector<DynamicBitset> bitmaps(2, DynamicBitset(4));
  EXPECT_EQ(sharing_degree(bitmaps, {0, 0}, 1), 0.0);
}

TEST(InformationCompleteness, FullKnowledgeIsOne) {
  std::vector<DynamicBitset> truth(2, DynamicBitset(4));
  truth[0].set(0);
  truth[1].set(1);
  EXPECT_DOUBLE_EQ(information_completeness(truth, truth), 1.0);
}

TEST(InformationCompleteness, NoKnowledgeIsZero) {
  std::vector<DynamicBitset> truth(2, DynamicBitset(4));
  truth[0].set(0);
  truth[1].set(1);
  std::vector<DynamicBitset> observed(2, DynamicBitset(4));
  EXPECT_DOUBLE_EQ(information_completeness(observed, truth), 0.0);
}

TEST(InformationCompleteness, PartialKnowledgeCountsPairs) {
  std::vector<DynamicBitset> truth(2, DynamicBitset(4));
  truth[0].set(0);
  truth[0].set(1);
  truth[1].set(2);
  truth[1].set(3);
  std::vector<DynamicBitset> observed(2, DynamicBitset(4));
  observed[0].set(0);
  EXPECT_DOUBLE_EQ(information_completeness(observed, truth), 0.25);
}

TEST(InformationCompleteness, SpuriousObservationsDoNotInflate) {
  // Observing pages outside the oracle must not push completeness
  // past the known-pair fraction.
  std::vector<DynamicBitset> truth(1, DynamicBitset(4));
  truth[0].set(0);
  std::vector<DynamicBitset> observed(1, DynamicBitset(4));
  observed[0].set(1);
  observed[0].set(2);
  EXPECT_DOUBLE_EQ(information_completeness(observed, truth), 0.0);
}

TEST(InformationCompleteness, EmptyTruthIsComplete) {
  std::vector<DynamicBitset> truth(2, DynamicBitset(4));
  std::vector<DynamicBitset> observed(2, DynamicBitset(4));
  EXPECT_DOUBLE_EQ(information_completeness(observed, truth), 1.0);
}

}  // namespace
}  // namespace actrack
