// SparseCorrelation ↔ CorrelationMatrix equivalence (the scaling-axis
// contract): with the exact settings (min_correlation = 1, unlimited
// top_k) the sparse neighbour lists must reproduce the dense matrix
// bit-for-bit — every entry, every aggregate, and every placement the
// min-cost pipeline derives from them — across the paper's application
// kernels.  The pruned configurations get their own semantic checks.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "common/rng.hpp"
#include "correlation/matrix.hpp"
#include "correlation/sparse.hpp"
#include "placement/heuristics.hpp"
#include "placement/placement.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack {
namespace {

constexpr std::array<const char*, 8> kApps = {
    "SOR", "Water", "FFT7", "LU2k", "Ocean", "Barnes", "Spatial", "FFT6"};
constexpr std::int32_t kThreads = 64;
constexpr NodeId kNodes = 8;

/// The §4.2 collection pass, kept at the bitmap level so both builders
/// start from the same input.
std::vector<DynamicBitset> tracked_bitmaps(const std::string& app) {
  const std::unique_ptr<Workload> workload = make_workload(app, kThreads);
  ClusterRuntime runtime(*workload, Placement::stretch(kThreads, kNodes));
  runtime.run_init();
  return runtime.run_tracked_iteration().tracking.access_bitmaps;
}

void expect_equal_views(const CorrelationMatrix& dense,
                        const SparseCorrelation& sparse,
                        const std::string& app) {
  ASSERT_EQ(sparse.num_threads(), dense.num_threads()) << app;
  for (ThreadId a = 0; a < dense.num_threads(); ++a) {
    for (ThreadId b = 0; b < dense.num_threads(); ++b) {
      ASSERT_EQ(sparse.at(a, b), dense.at(a, b))
          << app << " at(" << a << "," << b << ")";
    }
  }
  EXPECT_EQ(sparse.max_off_diagonal(), dense.max_off_diagonal()) << app;
  EXPECT_EQ(sparse.total_pair_correlation(), dense.total_pair_correlation())
      << app;

  Rng rng(0xE0u);
  for (int trial = 0; trial < 4; ++trial) {
    const std::vector<NodeId> assignment =
        balanced_random_placement(rng, kThreads, kNodes).node_of_thread();
    EXPECT_EQ(sparse.cut_cost(assignment), dense.cut_cost(assignment)) << app;
  }
  const std::vector<NodeId> stretch =
      Placement::stretch(kThreads, kNodes).node_of_thread();
  EXPECT_EQ(sparse.cut_cost(stretch), dense.cut_cost(stretch)) << app;

  for (ThreadId t = 0; t < dense.num_threads(); t += 7) {
    for (const std::int32_t k : {1, 4, kThreads}) {
      const auto expected = dense.top_neighbors(t, k);
      const auto actual = sparse.top_neighbors(t, k);
      ASSERT_EQ(actual.size(), expected.size()) << app;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].thread, expected[i].thread) << app;
        EXPECT_EQ(actual[i].value, expected[i].value) << app;
      }
    }
  }
}

TEST(SparseEquivalence, ExactSettingsMatchDenseOnEveryAppKernel) {
  for (const char* app : kApps) {
    const std::vector<DynamicBitset> bitmaps = tracked_bitmaps(app);
    const CorrelationMatrix dense = CorrelationMatrix::from_bitmaps(bitmaps);
    const SparseCorrelation sparse = SparseCorrelation::from_bitmaps(bitmaps);
    expect_equal_views(dense, sparse, app);
  }
}

TEST(SparseEquivalence, MinCostPlacementIsIdenticalThroughEitherView) {
  // The whole flat pipeline — greedy seed, stretch/random restarts,
  // swap refinement, basin hopping — must pick the same placement
  // whether it reads the dense matrix or the exact sparse view.
  for (const char* app : kApps) {
    const std::vector<DynamicBitset> bitmaps = tracked_bitmaps(app);
    const CorrelationMatrix dense = CorrelationMatrix::from_bitmaps(bitmaps);
    const SparseCorrelation sparse = SparseCorrelation::from_bitmaps(bitmaps);
    const Placement from_dense = min_cost_placement(dense, kNodes);
    const Placement from_sparse = min_cost_placement(sparse, kNodes);
    EXPECT_EQ(from_sparse.node_of_thread(), from_dense.node_of_thread())
        << app;
  }
}

/// Sparsely-shared pattern (each page held by at most two threads), so
/// localized drift keeps the incremental affected set small.  App
/// workloads like Water share pages globally — flipping one of those
/// legitimately touches every row and takes the rebuild path, which
/// WholesaleChangeFallsBackToRebuildAndStaysExact covers.
std::vector<DynamicBitset> band_bitmaps(std::int32_t threads) {
  constexpr std::int32_t kStride = 6;
  std::vector<DynamicBitset> maps(
      static_cast<std::size_t>(threads),
      DynamicBitset(static_cast<std::int64_t>(threads) * kStride));
  for (std::int32_t t = 0; t < threads; ++t) {
    const std::int64_t base = static_cast<std::int64_t>(t) * kStride;
    for (std::int32_t p = 0; p < kStride; ++p) {
      maps[static_cast<std::size_t>(t)].set(base + p);
      if (p >= 4) {  // two pages shared with the next thread
        maps[static_cast<std::size_t>((t + 1) % threads)].set(base + p);
      }
    }
  }
  return maps;
}

TEST(SparseEquivalence, IncrementalUpdateMatchesFreshBuild) {
  std::vector<DynamicBitset> bitmaps = band_bitmaps(kThreads);
  SparseCorrelation incremental;
  incremental.update(bitmaps);
  EXPECT_TRUE(incremental.last_was_rebuild());

  // Drift a handful of threads' working sets and re-sync: the affected
  // set must stay local, and the result must equal both a fresh sparse
  // build and the dense matrix.
  Rng rng(7);
  for (int round = 0; round < 3; ++round) {
    for (int change = 0; change < 4; ++change) {
      auto& map = bitmaps[static_cast<std::size_t>(
          rng.uniform(static_cast<std::int64_t>(bitmaps.size())))];
      const std::int64_t page = rng.uniform(map.size());
      if (map.test(page)) {
        map.reset(page);
      } else {
        map.set(page);
      }
    }
    incremental.update(bitmaps);
    EXPECT_FALSE(incremental.last_was_rebuild());
    EXPECT_LT(incremental.last_affected_rows(),
              static_cast<std::int64_t>(bitmaps.size()));

    const CorrelationMatrix dense = CorrelationMatrix::from_bitmaps(bitmaps);
    expect_equal_views(dense, incremental, "band drift");
    const SparseCorrelation fresh = SparseCorrelation::from_bitmaps(bitmaps);
    EXPECT_EQ(incremental.nonzero_pairs(), fresh.nonzero_pairs());
  }
}

TEST(SparseEquivalence, WholesaleChangeFallsBackToRebuildAndStaysExact) {
  std::vector<DynamicBitset> bitmaps = tracked_bitmaps("SOR");
  SparseCorrelation incremental;
  incremental.update(bitmaps);

  // Shift every thread's working set: the affected set covers most rows,
  // so the incremental path must hand over to the rebuild — same answer.
  for (auto& map : bitmaps) {
    for (std::int64_t bit = 0; bit < map.size(); bit += 2) {
      if (map.test(bit)) {
        map.reset(bit);
      } else {
        map.set(bit);
      }
    }
  }
  incremental.update(bitmaps);
  EXPECT_TRUE(incremental.last_was_rebuild());
  expect_equal_views(CorrelationMatrix::from_bitmaps(bitmaps), incremental,
                     "SOR wholesale");
}

TEST(SparsePruning, ThresholdDropsWeakPairsSymmetrically) {
  const std::vector<DynamicBitset> bitmaps = tracked_bitmaps("Water");
  const CorrelationMatrix dense = CorrelationMatrix::from_bitmaps(bitmaps);
  SparseCorrelationOptions options;
  options.min_correlation = 3;
  const SparseCorrelation pruned =
      SparseCorrelation::from_bitmaps(bitmaps, options);
  for (ThreadId a = 0; a < kThreads; ++a) {
    for (ThreadId b = 0; b < kThreads; ++b) {
      if (a == b) continue;
      const std::int64_t full = dense.at(a, b);
      const std::int64_t kept = pruned.at(a, b);
      EXPECT_EQ(kept, full >= options.min_correlation ? full : 0);
      EXPECT_EQ(pruned.at(b, a), kept);  // symmetry survives pruning
    }
  }
}

TEST(SparsePruning, TopKKeepsEachThreadsStrongestNeighbors) {
  const std::vector<DynamicBitset> bitmaps = tracked_bitmaps("Barnes");
  const CorrelationMatrix dense = CorrelationMatrix::from_bitmaps(bitmaps);
  SparseCorrelationOptions options;
  options.top_k = 4;
  const SparseCorrelation pruned =
      SparseCorrelation::from_bitmaps(bitmaps, options);
  for (ThreadId t = 0; t < kThreads; ++t) {
    // Everything the dense view ranks in t's top k must be stored (a
    // pair may additionally survive through its other endpoint).
    for (const CorrelationNeighbor& top :
         dense.top_neighbors(t, options.top_k)) {
      EXPECT_EQ(pruned.at(t, top.thread), top.value);
    }
    EXPECT_LE(pruned.neighbors(t).size(),
              static_cast<std::size_t>(2 * kThreads));
    for (const CorrelationNeighbor& kept : pruned.neighbors(t)) {
      EXPECT_EQ(kept.value, dense.at(t, kept.thread));  // values unchanged
      EXPECT_EQ(pruned.at(kept.thread, t), kept.value);  // symmetric
    }
  }
}

}  // namespace
}  // namespace actrack
