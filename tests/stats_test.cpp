#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace actrack {
namespace {

TEST(Accumulator, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // classic population-variance set
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, TracksNegativeMin) {
  Accumulator acc;
  acc.add(3.0);
  acc.add(-7.0);
  acc.add(1.0);
  EXPECT_DOUBLE_EQ(acc.min(), -7.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(LinearFitTest, PerfectLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.correlation, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 50);
}

TEST(LinearFitTest, PerfectNegativeLine) {
  std::vector<double> x = {0, 1, 2, 3};
  std::vector<double> y = {10, 8, 6, 4};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 10.0, 1e-12);
  EXPECT_NEAR(fit.correlation, -1.0, 1e-12);
}

TEST(LinearFitTest, ConstantYHasZeroCorrelation) {
  std::vector<double> x = {0, 1, 2, 3};
  std::vector<double> y = {5, 5, 5, 5};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_EQ(fit.correlation, 0.0);
}

TEST(LinearFitTest, ConstantXThrows) {
  std::vector<double> x = {3, 3, 3};
  std::vector<double> y = {1, 2, 3};
  EXPECT_THROW((void)fit_linear(x, y), std::logic_error);
}

TEST(LinearFitTest, SizeMismatchThrows) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {1, 2};
  EXPECT_THROW((void)fit_linear(x, y), std::logic_error);
}

TEST(LinearFitTest, TooFewPointsThrows) {
  std::vector<double> x = {1};
  std::vector<double> y = {2};
  EXPECT_THROW((void)fit_linear(x, y), std::logic_error);
}

TEST(LinearFitTest, NoisyLineRecoversParameters) {
  Rng rng(17);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = static_cast<double>(rng.uniform(1000));
    x.push_back(xi);
    y.push_back(3.0 * xi + 100.0 + (rng.uniform_real() - 0.5) * 20.0);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_NEAR(fit.intercept, 100.0, 6.0);
  EXPECT_GT(fit.correlation, 0.999);
}

TEST(PearsonTest, MatchesFitCorrelation) {
  Rng rng(23);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(static_cast<double>(rng.uniform(100)));
    y.push_back(static_cast<double>(rng.uniform(100)));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(pearson(x, y), fit.correlation, 1e-12);
}

TEST(PearsonTest, SymmetricInArguments) {
  std::vector<double> x = {1, 5, 2, 8, 3};
  std::vector<double> y = {2, 4, 4, 9, 1};
  EXPECT_NEAR(pearson(x, y), pearson(y, x), 1e-15);
}

TEST(PearsonTest, DegenerateInputsReturnZero) {
  EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
  EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, BoundedByOne) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x, y;
    for (int i = 0; i < 30; ++i) {
      x.push_back(rng.uniform_real());
      y.push_back(rng.uniform_real());
    }
    const double r = pearson(x, y);
    EXPECT_LE(std::abs(r), 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace actrack
