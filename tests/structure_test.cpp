#include "correlation/structure.hpp"

#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

CorrelationMatrix ring(std::int32_t n, std::int64_t w = 10) {
  CorrelationMatrix m(n);
  for (ThreadId t = 0; t + 1 < n; ++t) m.set(t, t + 1, w);
  return m;
}

CorrelationMatrix blocks(std::int32_t n, std::int32_t g,
                         std::int64_t inside = 10,
                         std::int64_t outside = 0) {
  CorrelationMatrix m(n);
  for (ThreadId i = 0; i < n; ++i) {
    for (ThreadId j = i + 1; j < n; ++j) {
      m.set(i, j, (i / g == j / g) ? inside : outside);
    }
  }
  return m;
}

CorrelationMatrix uniform(std::int32_t n, std::int64_t w = 5) {
  CorrelationMatrix m(n);
  for (ThreadId i = 0; i < n; ++i) {
    for (ThreadId j = i + 1; j < n; ++j) m.set(i, j, w);
  }
  return m;
}

TEST(BlockContrastTest, SeparatesInsideFromOutside) {
  const BlockContrast c = block_contrast(blocks(16, 4, 12, 3), 4);
  EXPECT_DOUBLE_EQ(c.inside, 12.0);
  EXPECT_DOUBLE_EQ(c.outside, 3.0);
  EXPECT_DOUBLE_EQ(c.ratio(), 4.0);
}

TEST(BlockContrastTest, WrongBlockSizeDilutesContrast) {
  const CorrelationMatrix m = blocks(16, 4, 12, 0);
  EXPECT_GT(block_contrast(m, 4).ratio(), block_contrast(m, 8).ratio());
}

TEST(NearestNeighbourFractionTest, PureBandIsOne) {
  EXPECT_DOUBLE_EQ(nearest_neighbour_fraction(ring(16)), 1.0);
}

TEST(NearestNeighbourFractionTest, UniformIsSmall) {
  // 15 of 120 pairs are adjacent.
  EXPECT_NEAR(nearest_neighbour_fraction(uniform(16)), 15.0 / 120.0, 1e-12);
}

TEST(NearestNeighbourFractionTest, EmptyMatrixIsZero) {
  CorrelationMatrix empty(8);
  EXPECT_EQ(nearest_neighbour_fraction(empty), 0.0);
}

TEST(DominantBlockSizeTest, FindsTheRightSize) {
  EXPECT_EQ(dominant_block_size(blocks(32, 8), {2, 4, 8, 16}), 8);
  EXPECT_EQ(dominant_block_size(blocks(32, 4), {2, 4, 8, 16}), 4);
}

TEST(DominantBlockSizeTest, ReturnsZeroWithoutStructure) {
  EXPECT_EQ(dominant_block_size(uniform(16), {2, 4, 8}), 0);
}

TEST(UniformityIndexTest, PerfectlyUniformIsOne) {
  EXPECT_DOUBLE_EQ(uniformity_index(uniform(16)), 1.0);
}

TEST(UniformityIndexTest, AnyZeroPairIsZero) {
  EXPECT_EQ(uniformity_index(ring(16)), 0.0);
}

TEST(ClassifyTest, SyntheticShapes) {
  EXPECT_EQ(classify_structure(ring(32)), "nearest-neighbour");
  EXPECT_EQ(classify_structure(uniform(32)), "all-to-all");
  EXPECT_EQ(classify_structure(blocks(32, 8)), "blocks of 8");
  CorrelationMatrix empty(8);
  EXPECT_EQ(classify_structure(empty), "irregular");
}

TEST(ClassifyTest, PaperAppsLandWhereTheMapsSay) {
  const auto matrix_for = [](const char* name) {
    const auto w = make_workload(name, 64);
    return CorrelationMatrix::from_bitmaps(
        pages_touched_per_thread(w->iteration(1), w->num_pages()));
  };
  // §3's readings of the 64-thread maps.
  EXPECT_EQ(classify_structure(matrix_for("SOR")), "nearest-neighbour");
  EXPECT_EQ(classify_structure(matrix_for("FFT8")), "all-to-all");
  const std::string fft6 = classify_structure(matrix_for("FFT6"));
  EXPECT_EQ(fft6.rfind("blocks of", 0), 0u) << fft6;
  const std::string ocean = classify_structure(matrix_for("Ocean"));
  EXPECT_EQ(ocean.rfind("blocks of", 0), 0u) << ocean;
}

}  // namespace
}  // namespace actrack
