#include "viz/svg_plot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace actrack {
namespace {

SvgSeries simple_series(bool connect = false) {
  SvgSeries s;
  s.label = "demo";
  s.x = {0, 1, 2, 3};
  s.y = {0, 10, 5, 20};
  s.connect = connect;
  return s;
}

TEST(SvgPlot, RendersWellFormedDocument) {
  SvgPlot plot("Title Here", "cut cost", "remote misses");
  plot.add_series(simple_series());
  const std::string svg = plot.render();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Title Here"), std::string::npos);
  EXPECT_NE(svg.find("cut cost"), std::string::npos);
  EXPECT_NE(svg.find("remote misses"), std::string::npos);
  EXPECT_NE(svg.find("demo"), std::string::npos);  // legend
}

TEST(SvgPlot, ScatterHasOneCirclePerPoint) {
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series(false));
  const std::string svg = plot.render();
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 4u);
  EXPECT_EQ(svg.find("<polyline"), std::string::npos);
}

TEST(SvgPlot, ConnectedSeriesDrawsPolyline) {
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series(true));
  EXPECT_NE(plot.render().find("<polyline"), std::string::npos);
}

TEST(SvgPlot, MultipleSeriesGetDistinctColours) {
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series());
  SvgSeries second = simple_series();
  second.label = "other";
  plot.add_series(second);
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("#1f77b4"), std::string::npos);
  EXPECT_NE(svg.find("#d62728"), std::string::npos);
}

TEST(SvgPlot, HandlesDegenerateRanges) {
  SvgPlot plot("t", "x", "y");
  SvgSeries flat;
  flat.label = "flat";
  flat.x = {5, 5, 5};
  flat.y = {2, 2, 2};
  plot.add_series(flat);
  EXPECT_NO_THROW((void)plot.render());  // no division by zero
}

TEST(SvgPlot, EmptyPlotThrows) {
  SvgPlot plot("t", "x", "y");
  EXPECT_THROW((void)plot.render(), std::logic_error);
}

TEST(SvgPlot, MismatchedSeriesThrows) {
  SvgPlot plot("t", "x", "y");
  SvgSeries bad;
  bad.x = {1, 2};
  bad.y = {1};
  EXPECT_THROW(plot.add_series(bad), std::logic_error);
  SvgSeries empty;
  EXPECT_THROW(plot.add_series(empty), std::logic_error);
}

TEST(SvgPlot, WritesToDisk) {
  const std::string path = ::testing::TempDir() + "svg_plot_test.svg";
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series());
  plot.write(path);
  std::ifstream in(path);
  std::string head;
  in >> head;
  EXPECT_EQ(head, "<svg");
  std::remove(path.c_str());
}

TEST(SvgPlot, WriteFailsOnBadPath) {
  SvgPlot plot("t", "x", "y");
  plot.add_series(simple_series());
  EXPECT_THROW(plot.write("/nonexistent_dir/x.svg"), std::logic_error);
}

TEST(SvgPlot, DeterministicOutput) {
  SvgPlot a("t", "x", "y"), b("t", "x", "y");
  a.add_series(simple_series(true));
  b.add_series(simple_series(true));
  EXPECT_EQ(a.render(), b.render());
}

}  // namespace
}  // namespace actrack
