// Tests of the active correlation-tracking mechanism (§4.2) — the
// paper's primary contribution.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "apps/workload.hpp"
#include "correlation/sharing.hpp"
#include "placement/heuristics.hpp"
#include "runtime/cluster_runtime.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

TEST(ActiveTracking, BitmapsExactlyMatchOracleOnRing) {
  // Claim (i) of the abstract: accurate thread affinities without
  // migration.  The tracked bitmaps must equal the trace's true
  // per-thread page sets.
  RingWorkload w(8, 4, 2);
  ClusterRuntime runtime(w, Placement::stretch(8, 2));
  runtime.run_init();
  const IterationTrace reference = w.iteration(runtime.next_iteration());
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  const auto oracle = pages_touched_per_thread(reference, w.num_pages());
  ASSERT_EQ(tracked.tracking.access_bitmaps.size(), oracle.size());
  for (std::size_t t = 0; t < oracle.size(); ++t) {
    EXPECT_EQ(tracked.tracking.access_bitmaps[t], oracle[t])
        << "thread " << t;
  }
}

TEST(ActiveTracking, BitmapsMatchOracleOnEveryPaperApp) {
  for (const std::string& name : all_workload_names()) {
    const auto w = make_workload(name, 16);
    ClusterRuntime runtime(*w, Placement::stretch(16, 4));
    runtime.run_init();
    const IterationTrace reference = w->iteration(runtime.next_iteration());
    const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
    const auto oracle = pages_touched_per_thread(reference, w->num_pages());
    for (std::size_t t = 0; t < oracle.size(); ++t) {
      EXPECT_EQ(tracked.tracking.access_bitmaps[t], oracle[t])
          << name << " thread " << t;
    }
  }
}

TEST(ActiveTracking, TrackingFaultsArePerThreadPerPhaseFirstTouches) {
  // Correlation bits are re-armed at every thread switch (§4.2 step 3),
  // so a page touched by one thread in both phases faults twice.
  RingWorkload w(4, 2, 1);  // single phase
  ClusterRuntime runtime(w, Placement::stretch(4, 2));
  runtime.run_init();
  const IterationTrace trace = w.iteration(1);
  std::int64_t expected = 0;
  for (const Phase& phase : trace.phases) {
    const auto touched = pages_touched_per_thread(
        IterationTrace{trace.num_threads, {phase}}, w.num_pages());
    for (const auto& bitmap : touched) expected += bitmap.count();
  }
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  EXPECT_EQ(tracked.tracking.tracking_faults, expected);
}

TEST(ActiveTracking, TrackedIterationIsSlowerThanUntracked) {
  // Table 5: tracking costs something on every application.
  const auto w = make_workload("SOR", 16);
  ClusterRuntime a(*w, Placement::stretch(16, 4));
  a.run_init();
  const SimTime untracked = a.run_iteration().elapsed_us;

  ClusterRuntime b(*w, Placement::stretch(16, 4));
  b.run_init();
  const SimTime tracked = b.run_tracked_iteration().metrics.elapsed_us;
  EXPECT_GT(tracked, untracked);
}

TEST(ActiveTracking, CoherenceFaultsStillHandledDuringTracking) {
  // §4.2 step 2: "If the access type would have caused a violation even
  // outside the correlation-tracking phase, an additional fault occurs
  // and is handled normally."  The protocol keeps working: a tracked
  // run and an untracked run see the same remote misses.
  RingWorkload w(8, 4, 2);
  ClusterRuntime a(w, Placement::stretch(8, 2));
  a.run_init();
  const std::int64_t untracked_misses = a.run_iteration().remote_misses;

  ClusterRuntime b(w, Placement::stretch(8, 2));
  b.run_init();
  const TrackedIterationMetrics tracked = b.run_tracked_iteration();
  EXPECT_EQ(tracked.metrics.remote_misses, untracked_misses);
  EXPECT_GT(tracked.tracking.coherence_faults, 0);
}

TEST(ActiveTracking, SharingDegreeIsOneWithoutSharing) {
  PrivateWorkload w(8, 2);
  ClusterRuntime runtime(w, Placement::stretch(8, 2));
  runtime.run_init();
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  const double degree =
      sharing_degree(tracked.tracking.access_bitmaps,
                     runtime.placement().node_of_thread(), 2);
  EXPECT_DOUBLE_EQ(degree, 1.0);
}

TEST(ActiveTracking, SharingDegreeEqualsLocalThreadsOnFullSharing) {
  AllToAllWorkload w(8, 1);
  ClusterRuntime runtime(w, Placement::stretch(8, 2));
  runtime.run_init();
  const TrackedIterationMetrics tracked = runtime.run_tracked_iteration();
  const double degree =
      sharing_degree(tracked.tracking.access_bitmaps,
                     runtime.placement().node_of_thread(), 2);
  // Every one of the 4 local threads touches every page.
  EXPECT_DOUBLE_EQ(degree, 4.0);
}

TEST(ActiveTracking, TrackingCostScalesWithLocalSharing) {
  // §4.2: "Local sharing increases the number of faults because each
  // shared page incurs more than one page fault."
  AllToAllWorkload shared(8, 2);
  ClusterRuntime a(shared, Placement::stretch(8, 2));
  a.run_init();
  const std::int64_t shared_faults =
      a.run_tracked_iteration().tracking.tracking_faults;

  PrivateWorkload priv(8, 2);
  ClusterRuntime b(priv, Placement::stretch(8, 2));
  b.run_init();
  const std::int64_t private_faults =
      b.run_tracked_iteration().tracking.tracking_faults;

  EXPECT_GT(shared_faults, private_faults);
}

TEST(ActiveTracking, MatrixFromTrackedBitmapsDrivesGoodPlacement) {
  // End-to-end §5: tracked info → min-cost placement → cut cost equals
  // the known optimum for the ring.
  RingWorkload w(16, 4, 2);
  const CorrelationMatrix m = collect_correlations(w, 4);
  const Placement p = min_cost_placement(m, 4);
  EXPECT_EQ(m.cut_cost(p.node_of_thread()), 4 * 2);
}

}  // namespace
}  // namespace actrack
