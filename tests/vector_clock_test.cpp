// Vector clocks and the precise-causality LRC mode.
#include "common/vector_clock.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dsm/protocol.hpp"

namespace actrack {
namespace {

TEST(VectorClockTest, StartsAtZero) {
  VectorClock vc(4);
  for (NodeId n = 0; n < 4; ++n) EXPECT_EQ(vc.component(n), 0);
}

TEST(VectorClockTest, IncrementIsPerComponent) {
  VectorClock vc(3);
  vc.increment(1);
  vc.increment(1);
  vc.increment(2);
  EXPECT_EQ(vc.component(0), 0);
  EXPECT_EQ(vc.component(1), 2);
  EXPECT_EQ(vc.component(2), 1);
}

TEST(VectorClockTest, MergeTakesPointwiseMax) {
  VectorClock a(3), b(3);
  a.increment(0);
  a.increment(0);
  b.increment(0);
  b.increment(2);
  a.merge(b);
  EXPECT_EQ(a.component(0), 2);
  EXPECT_EQ(a.component(1), 0);
  EXPECT_EQ(a.component(2), 1);
}

TEST(VectorClockTest, LessEqualIsThePartialOrder) {
  VectorClock a(2), b(2);
  EXPECT_TRUE(a.less_equal(b));
  a.increment(0);
  EXPECT_FALSE(a.less_equal(b));
  EXPECT_TRUE(b.less_equal(a));
  b.increment(1);
  // Concurrent: neither <= the other.
  EXPECT_FALSE(a.less_equal(b));
  EXPECT_FALSE(b.less_equal(a));
}

TEST(VectorClockTest, SizeMismatchThrows) {
  VectorClock a(2), b(3);
  EXPECT_THROW(a.merge(b), std::logic_error);
  EXPECT_THROW((void)a.less_equal(b), std::logic_error);
  EXPECT_THROW(a.increment(2), std::logic_error);
}

// ---------------------------------------------------------------------
// DSM precise-causality behaviour.

PageAccess read_of(PageId page) { return {page, AccessKind::kRead, 0}; }
PageAccess write_of(PageId page, std::int32_t bytes = 64) {
  return {page, AccessKind::kWrite, bytes};
}

class CausalityTest : public ::testing::Test {
 protected:
  void make(CausalityMode mode) {
    DsmConfig config;
    config.causality = mode;
    net_ = std::make_unique<NetworkModel>(3, CostModel{});
    dsm_ = std::make_unique<DsmSystem>(8, 3, net_.get(), config);
  }
  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<DsmSystem> dsm_;
};

TEST_F(CausalityTest, LockAcquireSkipsCausallyConcurrentWrites) {
  // Node 0 writes page 0 and releases (no lock involved); node 1 then
  // hands a lock to node 2.  Node 0's write is *concurrent* with the
  // lock chain: under precise causality node 2 keeps its replica, under
  // the total order it conservatively invalidates.
  for (const auto mode :
       {CausalityMode::kTotalOrder, CausalityMode::kVectorClock}) {
    make(mode);
    dsm_->access(2, 2, read_of(0));        // node 2 holds a replica
    dsm_->access(0, 0, write_of(0));       // concurrent writer
    dsm_->release_node(0);
    dsm_->lock_transfer(kNoNode, 1, /*lock_id=*/5);
    dsm_->release_node(1);                 // releases nothing (clean)
    dsm_->lock_transfer(1, 2, /*lock_id=*/5);
    if (mode == CausalityMode::kVectorClock) {
      EXPECT_EQ(dsm_->page_state(2, 0), PageState::kReadOnly)
          << "precise mode must keep the causally-unrelated replica";
    } else {
      EXPECT_EQ(dsm_->page_state(2, 0), PageState::kInvalid)
          << "total order conservatively invalidates";
    }
  }
}

TEST_F(CausalityTest, LockAcquireStillSeesCausallyPriorWrites) {
  // Node 0 writes under the lock, then hands the lock to node 1: the
  // write IS in the acquirer's causal past and must invalidate.
  make(CausalityMode::kVectorClock);
  dsm_->access(1, 1, read_of(0));
  dsm_->lock_transfer(kNoNode, 0, /*lock_id=*/7);
  dsm_->access(0, 0, write_of(0));
  dsm_->release_node(0);
  dsm_->lock_transfer(0, 1, /*lock_id=*/7);
  EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);
}

TEST_F(CausalityTest, CausalityFlowsThroughLockChains) {
  // 0 writes under lock A → 1 takes lock A, then releases lock B to 2:
  // transitive happened-before must reach node 2.
  make(CausalityMode::kVectorClock);
  dsm_->access(2, 2, read_of(0));
  dsm_->lock_transfer(kNoNode, 0, /*lock_id=*/1);
  dsm_->access(0, 0, write_of(0));
  dsm_->release_node(0);
  dsm_->lock_transfer(0, 1, /*lock_id=*/1);  // 1 observes 0's write
  dsm_->lock_transfer(kNoNode, 1, /*lock_id=*/2);
  dsm_->release_node(1);
  dsm_->lock_transfer(1, 2, /*lock_id=*/2);  // transitivity
  EXPECT_EQ(dsm_->page_state(2, 0), PageState::kInvalid);
}

TEST_F(CausalityTest, BarriersSynchroniseEverythingInBothModes) {
  for (const auto mode :
       {CausalityMode::kTotalOrder, CausalityMode::kVectorClock}) {
    make(mode);
    dsm_->access(1, 1, read_of(0));
    dsm_->access(0, 0, write_of(0));
    for (NodeId n = 0; n < 3; ++n) dsm_->release_node(n);
    dsm_->barrier_epoch();
    EXPECT_EQ(dsm_->page_state(1, 0), PageState::kInvalid);
  }
}

TEST_F(CausalityTest, PreciseModeNeverInvalidatesMoreThanTotalOrder) {
  // Run the same deterministic mixed-sync schedule under both modes and
  // compare invalidation counts.
  std::int64_t invalidations[2] = {0, 0};
  int idx = 0;
  for (const auto mode :
       {CausalityMode::kTotalOrder, CausalityMode::kVectorClock}) {
    make(mode);
    for (int step = 0; step < 6; ++step) {
      dsm_->access(step % 3, step % 3, write_of(step % 4));
      dsm_->access((step + 1) % 3, (step + 1) % 3, read_of(step % 4));
      dsm_->release_node(step % 3);
      dsm_->lock_transfer(step % 3, (step + 2) % 3, /*lock_id=*/0);
    }
    invalidations[idx++] = dsm_->stats().invalidations;
  }
  EXPECT_LE(invalidations[1], invalidations[0]);
}

}  // namespace
}  // namespace actrack
