#include "viz/map_render.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace actrack {
namespace {

CorrelationMatrix band_matrix() {
  CorrelationMatrix m(8);
  for (ThreadId t = 0; t < 7; ++t) m.set(t, t + 1, 10);
  m.set(0, 0, 20);
  return m;
}

struct Pgm {
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::vector<std::uint8_t> pixels;
};

Pgm read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string magic;
  Pgm pgm;
  int maxval = 0;
  in >> magic >> pgm.width >> pgm.height >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  pgm.pixels.resize(static_cast<std::size_t>(pgm.width) *
                    static_cast<std::size_t>(pgm.height));
  in.read(reinterpret_cast<char*>(pgm.pixels.data()),
          static_cast<std::streamsize>(pgm.pixels.size()));
  EXPECT_TRUE(in.good());
  return pgm;
}

class VizTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(VizTest, PgmHasExpectedGeometry) {
  path_ = ::testing::TempDir() + "map_geometry.pgm";
  MapRenderOptions options;
  options.scale = 3;
  write_pgm(band_matrix(), path_, options);
  const Pgm pgm = read_pgm(path_);
  EXPECT_EQ(pgm.width, 24);
  EXPECT_EQ(pgm.height, 24);
}

TEST_F(VizTest, SharedPairsAreDarkerThanUnsharedOnes) {
  path_ = ::testing::TempDir() + "map_shading.pgm";
  MapRenderOptions options;
  options.scale = 1;
  options.origin_lower_left = false;  // row y == thread y
  write_pgm(band_matrix(), path_, options);
  const Pgm pgm = read_pgm(path_);
  auto pixel = [&](std::int32_t y, std::int32_t x) {
    return pgm.pixels[static_cast<std::size_t>(y * pgm.width + x)];
  };
  EXPECT_LT(pixel(0, 1), pixel(0, 5));  // sharing (0,1) darker than (0,5)
  EXPECT_EQ(pixel(0, 5), 255);          // no sharing → white
  EXPECT_LT(pixel(0, 0), 255);          // diagonal is dark
}

TEST_F(VizTest, OriginLowerLeftFlipsRows) {
  path_ = ::testing::TempDir() + "map_origin.pgm";
  MapRenderOptions options;
  options.scale = 1;
  options.origin_lower_left = true;
  write_pgm(band_matrix(), path_, options);
  const Pgm pgm = read_pgm(path_);
  // Thread pair (0,1) now appears on the bottom row of the image.
  const auto bottom =
      pgm.pixels[static_cast<std::size_t>((pgm.height - 1) * pgm.width + 1)];
  EXPECT_LT(bottom, 255);
}

TEST_F(VizTest, ZoneOverlayMarksSameNodeBorders) {
  path_ = ::testing::TempDir() + "map_zones.pgm";
  MapRenderOptions options;
  options.scale = 1;
  options.origin_lower_left = false;
  const Placement placement = Placement::stretch(8, 2);

  // Without zones the far corner pair (0,5) is pure white; the zone
  // border marking must change same-node border cells.
  write_pgm_with_zones(band_matrix(), placement, path_, options);
  const Pgm pgm = read_pgm(path_);
  auto pixel = [&](std::int32_t y, std::int32_t x) {
    return pgm.pixels[static_cast<std::size_t>(y * pgm.width + x)];
  };
  // (0,0) is a free-zone border corner → marked (not plain dark/white).
  EXPECT_NE(pixel(0, 0), 255);
  // (0,3) same node, on the block border → marked vs the unzoned 255.
  EXPECT_EQ(pixel(0, 3), 90);
  // Cross-node pair far from any zone stays white.
  EXPECT_EQ(pixel(0, 6), 255);
}

TEST_F(VizTest, ZoneOverlayRejectsMismatchedPlacement) {
  path_ = ::testing::TempDir() + "map_zone_mismatch.pgm";
  const Placement placement = Placement::stretch(4, 2);
  EXPECT_THROW(write_pgm_with_zones(band_matrix(), placement, path_),
               std::logic_error);
}

TEST_F(VizTest, WriteFailsOnBadPath) {
  EXPECT_THROW(write_pgm(band_matrix(), "/nonexistent_dir/x.pgm"),
               std::logic_error);
}

TEST(AsciiMapTest, HasExpectedShape) {
  const std::string art = ascii_map(band_matrix(), 16);
  // 8 threads ≤ 16 → one cell per pair, doubled characters + newline.
  std::int32_t rows = 0;
  std::stringstream ss(art);
  std::string line;
  while (std::getline(ss, line)) {
    EXPECT_EQ(line.size(), 16u);
    ++rows;
  }
  EXPECT_EQ(rows, 8);
}

TEST(AsciiMapTest, DownsamplesLargeMatrices) {
  CorrelationMatrix m(128);
  for (ThreadId t = 0; t < 127; ++t) m.set(t, t + 1, 5);
  const std::string art = ascii_map(m, 32);
  std::stringstream ss(art);
  std::string line;
  std::getline(ss, line);
  EXPECT_LE(line.size(), 64u);
}

TEST(AsciiMapTest, StrongPairsRenderDenser) {
  CorrelationMatrix m(4);
  m.set(0, 1, 100);
  m.set(2, 3, 1);
  const std::string art = ascii_map(m, 8);
  // Rows are printed top row = highest thread.  The (0,1) pair is in
  // the bottom row, second cell; it must be '@' (max density).
  std::vector<std::string> lines;
  std::stringstream ss(art);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[3][2], '@');
  EXPECT_EQ(lines[3][6], ' ');  // (0,3): no sharing
}

}  // namespace
}  // namespace actrack
