#include "placement/weighted.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "apps/synthetic.hpp"
#include "runtime/cluster_runtime.hpp"

namespace actrack {
namespace {

TEST(CapacityPopulations, ProportionalToSpeed) {
  // One node twice as fast as the other three: 2:1:1:1 over 20 threads.
  const auto sizes = capacity_populations(20, {2.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(sizes, (std::vector<std::int32_t>{8, 4, 4, 4}));
}

TEST(CapacityPopulations, SumsToThreadCount) {
  for (const std::int32_t threads : {7, 16, 33, 64}) {
    const auto sizes = capacity_populations(threads, {1.0, 2.5, 0.7});
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), threads);
    for (const std::int32_t size : sizes) EXPECT_GE(size, 1);
  }
}

TEST(CapacityPopulations, HomogeneousMatchesBalanced) {
  const auto sizes = capacity_populations(64, {1, 1, 1, 1, 1, 1, 1, 1});
  for (const std::int32_t size : sizes) EXPECT_EQ(size, 8);
}

TEST(CapacityPopulations, SlowNodeStillGetsOneThread) {
  const auto sizes = capacity_populations(10, {100.0, 0.001});
  EXPECT_EQ(sizes[1], 1);
  EXPECT_EQ(sizes[0], 9);
}

TEST(CapacityPopulations, RejectsNonPositiveSpeeds) {
  EXPECT_THROW((void)capacity_populations(8, {1.0, 0.0}), std::logic_error);
  EXPECT_THROW((void)capacity_populations(8, {1.0, -2.0}), std::logic_error);
  EXPECT_THROW((void)capacity_populations(1, {1.0, 1.0}), std::logic_error);
}

TEST(WeightedStretch, ContiguousAndProportional) {
  const Placement p = weighted_stretch(12, {2.0, 1.0, 1.0});
  EXPECT_EQ(p.threads_on(0), 6);
  EXPECT_EQ(p.threads_on(1), 3);
  EXPECT_EQ(p.threads_on(2), 3);
  for (ThreadId t = 1; t < 12; ++t) {
    EXPECT_GE(p.node_of(t), p.node_of(t - 1));  // contiguous blocks
  }
}

TEST(WeightedMinCost, PreservesCapacityPopulations) {
  CorrelationMatrix m(12);
  Rng rng(3);
  for (ThreadId i = 0; i < 12; ++i) {
    for (ThreadId j = i + 1; j < 12; ++j) m.set(i, j, rng.uniform(40));
  }
  const std::vector<double> speeds = {3.0, 1.0, 2.0};
  const Placement p = weighted_min_cost(m, speeds);
  const auto expected = capacity_populations(12, speeds);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(p.threads_on(n), expected[static_cast<std::size_t>(n)]);
  }
}

TEST(WeightedMinCost, BeatsWeightedStretchOnRandomMatrices) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    CorrelationMatrix m(16);
    for (ThreadId i = 0; i < 16; ++i) {
      for (ThreadId j = i + 1; j < 16; ++j) m.set(i, j, rng.uniform(60));
    }
    const std::vector<double> speeds = {2.0, 1.0, 1.0};
    const std::int64_t stretch_cut =
        m.cut_cost(weighted_stretch(16, speeds).node_of_thread());
    const std::int64_t mincost_cut =
        m.cut_cost(weighted_min_cost(m, speeds).node_of_thread());
    EXPECT_LE(mincost_cut, stretch_cut);
  }
}

TEST(WeightedMinCost, MatchesUnweightedOnHomogeneousCluster) {
  CorrelationMatrix m(8);
  for (ThreadId t = 0; t < 7; ++t) m.set(t, t + 1, 10);
  const Placement weighted = weighted_min_cost(m, {1.0, 1.0});
  const Placement plain = min_cost_placement(m, 2);
  EXPECT_EQ(m.cut_cost(weighted.node_of_thread()),
            m.cut_cost(plain.node_of_thread()));
}

TEST(SchedulerHeterogeneous, FastNodeFinishesComputeSooner) {
  // Same workload, same placement: making node 0 four times faster
  // must shorten the barrier-limited iteration when node 0 carries
  // proportionally more threads.
  PrivateWorkload w(8, 2);
  const std::vector<double> speeds = {4.0, 1.0};
  const Placement weighted = weighted_stretch(8, speeds);

  RuntimeConfig uniform_config;
  ClusterRuntime uniform_rt(w, weighted, uniform_config);
  uniform_rt.run_init();
  const SimTime uniform_time = uniform_rt.run_iteration().elapsed_us;

  RuntimeConfig hetero_config;
  hetero_config.sched.node_speed = speeds;
  ClusterRuntime hetero_rt(w, weighted, hetero_config);
  hetero_rt.run_init();
  const SimTime hetero_time = hetero_rt.run_iteration().elapsed_us;

  // Uniform cluster: node 0 (6 threads i.e. 6 units of work) limits.
  // Heterogeneous: node 0 does 6/4 units, node 1 does 2 — faster.
  EXPECT_LT(hetero_time, uniform_time);
}

TEST(SchedulerHeterogeneous, RejectsBadSpeedVectors) {
  PrivateWorkload w(4, 1);
  RuntimeConfig config;
  config.sched.node_speed = {1.0};  // wrong length for 2 nodes
  EXPECT_THROW(ClusterRuntime(w, Placement::stretch(4, 2), config),
               std::logic_error);
  config.sched.node_speed = {1.0, 0.0};
  EXPECT_THROW(ClusterRuntime(w, Placement::stretch(4, 2), config),
               std::logic_error);
}

}  // namespace
}  // namespace actrack
