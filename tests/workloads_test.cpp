#include "apps/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/synthetic.hpp"
#include "correlation/matrix.hpp"
#include "trace/trace_utils.hpp"

namespace actrack {
namespace {

CorrelationMatrix oracle_matrix(const Workload& w, std::int32_t iter = 1) {
  return CorrelationMatrix::from_bitmaps(
      pages_touched_per_thread(w.iteration(iter), w.num_pages()));
}

// ---------------------------------------------------------------------
// Generic well-formedness over every Table 1 configuration and several
// thread counts (parameterised sweep).

struct WorkloadCase {
  std::string name;
  std::int32_t threads;
};

class AllWorkloads : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(AllWorkloads, TracesAreWellFormed) {
  const auto& param = GetParam();
  const auto w = make_workload(param.name, param.threads);
  EXPECT_EQ(w->num_threads(), param.threads);
  EXPECT_GT(w->num_pages(), 0);
  for (std::int32_t iter = 0; iter < 3; ++iter) {
    const IterationTrace trace = w->iteration(iter);
    EXPECT_NO_THROW(validate_trace(trace, w->num_pages()))
        << param.name << " iter " << iter;
    EXPECT_EQ(trace.num_threads, param.threads);
    EXPECT_FALSE(trace.phases.empty());
  }
}

TEST_P(AllWorkloads, EveryThreadDoesWork) {
  const auto& param = GetParam();
  const auto w = make_workload(param.name, param.threads);
  const auto touched = pages_touched_per_thread(w->iteration(1),
                                                w->num_pages());
  for (std::size_t t = 0; t < touched.size(); ++t) {
    EXPECT_GT(touched[t].count(), 0)
        << param.name << " thread " << t << " touches nothing";
  }
}

TEST_P(AllWorkloads, IterationsAreDeterministic) {
  const auto& param = GetParam();
  const auto w = make_workload(param.name, param.threads);
  const auto a = pages_touched_per_thread(w->iteration(1), w->num_pages());
  const auto b = pages_touched_per_thread(w->iteration(1), w->num_pages());
  EXPECT_EQ(a, b);
}

TEST_P(AllWorkloads, InitCoversMeasuredData) {
  // Everything touched by iteration 1 must have been written by someone
  // during initialisation or be reachable from it — at minimum, the
  // init pass must touch a substantial share of the address space.
  const auto& param = GetParam();
  const auto w = make_workload(param.name, param.threads);
  const std::int64_t init_pages =
      distinct_pages_touched(w->iteration(0), w->num_pages());
  EXPECT_GT(init_pages, w->num_pages() / 2) << param.name;
}

std::vector<WorkloadCase> all_cases() {
  std::vector<WorkloadCase> cases;
  for (const std::string& name : all_workload_names()) {
    for (const std::int32_t threads : {32, 64}) {
      cases.push_back({name, threads});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, AllWorkloads, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<WorkloadCase>& param_info) {
      return param_info.param.name + "_" +
             std::to_string(param_info.param.threads);
    });

// ---------------------------------------------------------------------
// Table 1 shared-page counts: the paper's exact numbers where our layout
// reproduces them, magnitude bands elsewhere (see EXPERIMENTS.md).

TEST(Table1Pages, SorMatchesPaperExactly) {
  EXPECT_EQ(make_workload("SOR", 64)->num_pages(), 4099);
}

TEST(Table1Pages, WaterMatchesPaperExactly) {
  EXPECT_EQ(make_workload("Water", 64)->num_pages(), 44);
}

TEST(Table1Pages, BarnesMatchesPaperExactly) {
  EXPECT_EQ(make_workload("Barnes", 64)->num_pages(), 251);
}

TEST(Table1Pages, LuWithinPaperBand) {
  EXPECT_NEAR(make_workload("LU1k", 64)->num_pages(), 1032, 8);
  EXPECT_NEAR(make_workload("LU2k", 64)->num_pages(), 4105, 8);
}

TEST(Table1Pages, OceanWithinPaperBand) {
  EXPECT_NEAR(make_workload("Ocean", 64)->num_pages(), 3191, 100);
}

TEST(Table1Pages, FftAndSpatialSameMagnitudeAsPaper) {
  // Documented substitutions: our FFT shares both source and transpose
  // arrays; Spatial's record sizes are approximate.
  const double fft6 = make_workload("FFT6", 64)->num_pages();
  const double fft7 = make_workload("FFT7", 64)->num_pages();
  const double fft8 = make_workload("FFT8", 64)->num_pages();
  EXPECT_GT(fft6, 1796 * 0.5);
  EXPECT_LT(fft6, 1796 * 2.0);
  EXPECT_GT(fft7, 3588 * 0.5);
  EXPECT_LT(fft7, 3588 * 2.0);
  EXPECT_GT(fft8, 7172 * 0.5);
  EXPECT_LT(fft8, 7172 * 2.0);
  // Doubling the input roughly doubles the footprint.
  EXPECT_NEAR(fft7 / fft6, 2.0, 0.2);
  EXPECT_NEAR(fft8 / fft7, 2.0, 0.2);
  const double spatial = make_workload("Spatial", 64)->num_pages();
  EXPECT_GT(spatial, 569 * 0.5);
  EXPECT_LT(spatial, 569 * 2.0);
}

TEST(Table1Sync, SynchronizationKindsMatchPaper) {
  EXPECT_EQ(make_workload("SOR", 8)->synchronization(), "barrier");
  EXPECT_EQ(make_workload("FFT6", 8)->synchronization(), "barrier");
  EXPECT_EQ(make_workload("LU1k", 8)->synchronization(), "barrier");
  EXPECT_EQ(make_workload("Barnes", 8)->synchronization(), "barrier, lock");
  EXPECT_EQ(make_workload("Ocean", 8)->synchronization(), "barrier, lock");
  EXPECT_EQ(make_workload("Spatial", 8)->synchronization(), "barrier, lock");
  EXPECT_EQ(make_workload("Water", 8)->synchronization(), "barrier, lock");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_workload("NoSuchApp", 8), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Sharing-structure properties the paper derives from the maps (§3).

TEST(SharingStructure, SorIsPureNearestNeighbour) {
  const auto w = make_workload("SOR", 32);
  const CorrelationMatrix m = oracle_matrix(*w);
  for (ThreadId i = 0; i < 32; ++i) {
    for (ThreadId j = i + 1; j < 32; ++j) {
      if (j - i == 1) {
        EXPECT_GT(m.at(i, j), 0) << i << "," << j;
      } else {
        EXPECT_EQ(m.at(i, j), 0) << i << "," << j;
      }
    }
  }
}

TEST(SharingStructure, WaterDecreasesThenIncreasesWithDistance) {
  const auto w = make_workload("Water", 64);
  const CorrelationMatrix m = oracle_matrix(*w);
  // §3: nearest-neighbour traffic "starts high, smoothly decreases, and
  // then increases with distance".
  EXPECT_GT(m.at(0, 1), m.at(0, 20));
  EXPECT_GT(m.at(0, 63), m.at(0, 40));
  EXPECT_GT(m.at(0, 1), 0);
}

TEST(SharingStructure, Fft6HasEightThreadClusters) {
  const auto w = make_workload("FFT6", 64);
  const CorrelationMatrix m = oracle_matrix(*w);
  // Thread pairs within a grid row (0..7) and within a grid column
  // (stride 8) exchange transpose patches; pairs in neither group (0,9)
  // share only the roots-of-unity background.
  EXPECT_GT(m.at(0, 7), 2 * std::max<std::int64_t>(m.at(0, 9), 1));
  EXPECT_GT(m.at(0, 8), 2 * std::max<std::int64_t>(m.at(0, 9), 1));
  EXPECT_GT(m.at(8, 15), 2 * std::max<std::int64_t>(m.at(8, 17), 1));
}

TEST(SharingStructure, Fft8IsNearUniform) {
  const auto w = make_workload("FFT8", 64);
  const CorrelationMatrix m = oracle_matrix(*w);
  // All-to-all: distant pairs share nearly as much as near ones.
  std::int64_t near = 0, far = 0;
  for (ThreadId t = 0; t < 32; ++t) {
    near += m.at(t, t + 1);
    far += m.at(t, t + 32);
  }
  EXPECT_GT(far, near / 3);  // no deep cluster valleys
  EXPECT_GT(far, 0);
}

TEST(SharingStructure, LuHasConsecutiveThreadGroupsPlusBackground) {
  const auto w = make_workload("LU2k", 64);
  const CorrelationMatrix m = oracle_matrix(*w);
  // With four 1 KiB blocks per page, owners of consecutive block
  // columns within a thread-grid row co-touch every trailing page:
  // threads {0..3} form a tight group, thread 4 starts the next one.
  EXPECT_GT(m.at(0, 3), 2 * m.at(3, 4));
  // The pivot row/column reads give the uniform all-to-all background
  // the paper notes for LU (§5.1).
  EXPECT_GT(m.at(0, 8), 0);
  EXPECT_GT(m.at(0, 35), 0);
}

TEST(SharingStructure, OceanBandsAreClustersWithNeighbourCoupling) {
  const auto w = make_workload("Ocean", 64);
  const CorrelationMatrix m = oracle_matrix(*w);
  // 64 threads → 8 strips per band: 0..7 same band, 8 is the next band.
  EXPECT_GT(m.at(0, 7), m.at(0, 17));
  EXPECT_GT(m.at(0, 8), 0);  // vertical halo coupling
}

TEST(SharingStructure, BarnesIrregularComponentChangesAcrossIterations) {
  const auto w = make_workload("Barnes", 64);
  const auto a = pages_touched_per_thread(w->iteration(1), w->num_pages());
  const auto b = pages_touched_per_thread(w->iteration(2), w->num_pages());
  EXPECT_NE(a, b);  // the far-cell sample drifts
}

TEST(SharingStructure, SpatialPhaseGroupsScaleAsInPaper) {
  // §3.1.1: one phase's groups go 8×4 → 4×16 from 32 to 64 threads.
  const auto w32 = make_workload("Spatial", 32);
  const CorrelationMatrix m32 = oracle_matrix(*w32);
  const auto w64 = make_workload("Spatial", 64);
  const CorrelationMatrix m64 = oracle_matrix(*w64);
  // At 32 threads, slab groups are 4 wide: 0 and 3 share a slab, 0 and
  // 4 do not share it.
  EXPECT_GT(m32.at(0, 3), m32.at(0, 5));
  // At 64 threads, groups are 16 wide: 0 and 15 share a slab.
  EXPECT_GT(m64.at(0, 15), m64.at(0, 17));
}

// ---------------------------------------------------------------------
// Synthetic workloads used elsewhere in the suite.

TEST(SyntheticWorkloads, RingMatrixIsExactBand) {
  RingWorkload w(8, 4, 2);
  const CorrelationMatrix m = oracle_matrix(w);
  for (ThreadId i = 0; i < 8; ++i) {
    for (ThreadId j = i + 1; j < 8; ++j) {
      const bool adjacent = (j - i == 1) || (i == 0 && j == 7);
      EXPECT_EQ(m.at(i, j), adjacent ? 2 : 0) << i << "," << j;
    }
  }
}

TEST(SyntheticWorkloads, PrivateMatrixIsDiagonal) {
  PrivateWorkload w(6, 3);
  const CorrelationMatrix m = oracle_matrix(w);
  EXPECT_EQ(m.max_off_diagonal(), 0);
  EXPECT_EQ(m.at(0, 0), 3);
}

TEST(SyntheticWorkloads, AllToAllIsUniform) {
  AllToAllWorkload w(6, 2);
  const CorrelationMatrix m = oracle_matrix(w);
  const std::int64_t expected = m.at(0, 1);
  EXPECT_GT(expected, 0);
  for (ThreadId i = 0; i < 6; ++i) {
    for (ThreadId j = i + 1; j < 6; ++j) {
      EXPECT_EQ(m.at(i, j), expected);
    }
  }
}

}  // namespace
}  // namespace actrack
